(** WAN topologies with an explicit optical layer.

    The model follows the paper's two-layer view (§2, §6.1): the network is
    a directed graph [G = (V, E)] of routers and IP links, and each IP link
    rides on one or more physical {e fibers}.  A fiber cut simultaneously
    removes every IP link that traverses the fiber — this is what makes
    cuts so disruptive (Fig. 1b/1c: one cut loses multiple Tbps of IP
    capacity and touches a third of the flows).

    Three topologies are built in, matching Table 3:

    - {b B4}: Google's WAN (12 sites, 19 fiber spans, 52 IP links after
      wavelength expansion).  The fiber adjacency approximates the published
      B4 map; the IP layer is generated from the fiber layer with the
      distribution used by ARROW, exactly as the paper does.
    - {b IBM}: 18 sites, 23 fiber spans, 85 IP links (same IP-layer
      generation).
    - {b TWAN}: the paper's production topology is confidential; we generate
      a deterministic synthetic instance matching the published
      order-of-magnitude statistics (O(50) fibers, O(100) IP links).

    IP links are directed and created in opposite pairs riding the same
    fiber set. *)

type node = int

type fiber = {
  fid : int;
  fname : string;
  endpoints : node * node;  (** Sites the span connects (normalized order). *)
  length_km : float;
  region : int;  (** Coarse geographic region (feature for prediction). *)
  vendor : int;  (** Fiber vendor id (feature for prediction). *)
}

type link = {
  lid : int;
  src : node;
  dst : node;
  capacity : float;  (** Gbps. *)
  fibers : int list;  (** Fibers this IP link traverses, in order. *)
}

type t = {
  name : string;
  num_nodes : int;
  node_names : string array;
  fibers : fiber array;
  links : link array;
  out_links : int list array;  (** Outgoing link ids per node. *)
  links_on_fiber : int list array;  (** IP link ids riding each fiber. *)
}

val make :
  name:string ->
  node_names:string array ->
  fibers:(node * node * float) array ->
  links:(node * node * float * int list) array ->
  t
(** Low-level constructor.  [fibers] are [(a, b, length_km)]; [links] are
    [(src, dst, capacity, fiber ids)].  Regions/vendors are derived
    deterministically from the fiber id.  Validates endpoints and fiber
    references. *)

val b4 : unit -> t
val ibm : unit -> t
val twan : unit -> t
(** Deterministic instances (no hidden global state; calling twice yields
    structurally equal topologies). *)

val grid : int -> t
(** [grid k] is a deterministic k×k lattice: one 50 km fiber per
    undirected edge, two opposite 40 Gbps IP links riding it.  The
    scaling instance family of the LP bench and the default stage for
    the streaming runtime.  Raises [Invalid_argument] for [k < 2]. *)

val by_name : string -> t
(** ["B4"], ["IBM"], ["TWAN"] (case-insensitive), or ["gridK"] for any
    K ≥ 2 (e.g. ["grid4"]).  Raises [Invalid_argument] otherwise. *)

val all : unit -> t list
(** The three evaluation topologies in Table 3 order: IBM, B4, TWAN. *)

val link : t -> int -> link
val fiber : t -> int -> fiber
val num_links : t -> int
val num_fibers : t -> int

val links_lost_on_cut : t -> int -> int list
(** IP link ids removed when a fiber is cut. *)

val capacity_lost_on_cut : t -> int -> float
(** Total IP capacity (Gbps, summed over directed links) removed when the
    fiber is cut. *)

val neighbors : t -> node -> (int * node) list
(** Outgoing [(link id, destination)] pairs. *)

val pp_summary : Format.formatter -> t -> unit
