module Rng = Prete_util.Rng

type kind = Gravity | Diurnal | Flash_crowd | Coremelt

let kind_name = function
  | Gravity -> "gravity"
  | Diurnal -> "diurnal"
  | Flash_crowd -> "flash"
  | Coremelt -> "coremelt"

let all_kinds = [ Gravity; Diurnal; Flash_crowd; Coremelt ]
let all_names = List.map kind_name all_kinds

type t = {
  tm_name : string;
  tm_kind : kind;
  tm_seed : int;
  tm_pairs : (Topology.node * Topology.node) list;
  tm_baseline_flows : int;
  tm_classes : float array array;
  tm_schedule : int array;
  tm_phase : int;
  tm_surge : (int * int) option;
}

let name t = t.tm_name
let num_flows t = List.length t.tm_pairs
let period t = Array.length t.tm_schedule

let class_of t e =
  let p = period t in
  t.tm_schedule.(((e mod p) + p) mod p)

let demands t ~scale ~epoch =
  if scale < 0.0 then invalid_arg "Traffic_model.demands: negative scale";
  Array.map (fun d -> d *. scale) t.tm_classes.(class_of t epoch)

let baseline t = Array.copy t.tm_classes.(0)

(* --------------------------------------------------------------------- *)
(* Seeded gravity baseline                                                 *)
(* --------------------------------------------------------------------- *)

(* Seeded site masses and the full gravity matrix: entry (i,j) is
   m_i·m_j/S for i ≠ j (S = total mass) and zero on the diagonal, so row
   i and column i both sum to m_i·(S − m_i)/S — the row/column-mass law
   the property suite checks. *)
let gravity_parts ~seed topo =
  let n = topo.Topology.num_nodes in
  let rng = Rng.create (0x6a17 + (seed * 7919)) in
  let masses = Array.make n 0.0 in
  for i = 0 to n - 1 do
    masses.(i) <- 1.0 +. (9.0 *. Rng.float rng)
  done;
  let s = Array.fold_left ( +. ) 0.0 masses in
  let matrix =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0 else masses.(i) *. masses.(j) /. s))
  in
  (masses, matrix)

(* Heaviest [Traffic.default_num_flows] ordered pairs of the seeded
   gravity matrix, calibrated like [Traffic.generate]: shortest-path
   routing loads the busiest link to [utilization] at scale 1. *)
let calibrated_base ~seed ?(utilization = 0.75) topo =
  let n = topo.Topology.num_nodes in
  let _, matrix = gravity_parts ~seed topo in
  let num_flows = Traffic.default_num_flows topo in
  let scored = ref [] in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then scored := (matrix.(s).(d), (s, d)) :: !scored
    done
  done;
  let ranked =
    List.sort
      (fun (w1, p1) (w2, p2) -> match compare w2 w1 with 0 -> compare p1 p2 | c -> c)
      !scored
  in
  let chosen = List.filteri (fun i _ -> i < num_flows) ranked in
  let pairs = List.map snd chosen in
  let raw = Array.of_list (List.map fst chosen) in
  let link_load = Array.make (Topology.num_links topo) 0.0 in
  List.iteri
    (fun i (s, d) ->
      match Routing.shortest_path topo ~src:s ~dst:d () with
      | None -> invalid_arg "Traffic_model: disconnected pair"
      | Some p -> List.iter (fun lid -> link_load.(lid) <- link_load.(lid) +. raw.(i)) p)
    pairs;
  let worst = ref 0.0 in
  Array.iteri
    (fun lid load ->
      let u = load /. (Topology.link topo lid).Topology.capacity in
      if u > !worst then worst := u)
    link_load;
  let factor = if !worst > 0.0 then utilization /. !worst else 1.0 in
  (pairs, Array.map (fun w -> w *. factor) raw)

(* --------------------------------------------------------------------- *)
(* Models                                                                  *)
(* --------------------------------------------------------------------- *)

let model_name kind seed =
  if seed = 0 then kind_name kind
  else Printf.sprintf "%s:%d" (kind_name kind) seed

let gravity ?(seed = 0) topo =
  let pairs, base = calibrated_base ~seed topo in
  {
    tm_name = model_name Gravity seed;
    tm_kind = Gravity;
    tm_seed = seed;
    tm_pairs = pairs;
    tm_baseline_flows = List.length pairs;
    tm_classes = [| base |];
    tm_schedule = [| 0 |];
    tm_phase = 0;
    tm_surge = None;
  }

let diurnal ?(seed = 0) topo =
  let pairs, base = calibrated_base ~seed topo in
  let rng = Rng.create (0xd1a1 + (seed * 131)) in
  let phase = Rng.int rng 24 in
  let amp = 0.15 +. (0.1 *. Rng.float rng) in
  (* Multiplier 1.0 exactly (and only) at [phase]; trough 1 − 2·amp. *)
  let mult h =
    1.0 -. amp +. (amp *. cos (2.0 *. Float.pi *. float_of_int (h - phase) /. 24.0))
  in
  let classes = Array.init 24 (fun h -> Array.map (fun b -> b *. mult h) base) in
  {
    tm_name = model_name Diurnal seed;
    tm_kind = Diurnal;
    tm_seed = seed;
    tm_pairs = pairs;
    tm_baseline_flows = List.length pairs;
    tm_classes = classes;
    tm_schedule = Array.init 24 (fun h -> h);
    tm_phase = phase;
    tm_surge = None;
  }

let flash_crowd ?(seed = 0) topo =
  let pairs, base = calibrated_base ~seed topo in
  let nflows = Array.length base in
  let rng = Rng.create (0xf1a5 + (seed * 131)) in
  (* Onset within the first half-day so even short sweep runs (12
     epochs = hours 0–11) cross the surge window. *)
  let start = 3 + Rng.int rng 8 in
  let stop = min 24 (start + 2 + Rng.int rng 4) in
  let targets = max 1 (nflows / 8) in
  let factor = 4.0 +. (4.0 *. Rng.float rng) in
  let surged = Array.copy base in
  let hit = Array.make nflows false in
  let chosen = ref 0 and guard = ref 0 in
  while !chosen < targets && !guard < 100 * targets do
    incr guard;
    let f = Rng.int rng nflows in
    if not hit.(f) then begin
      hit.(f) <- true;
      surged.(f) <- base.(f) *. factor;
      incr chosen
    end
  done;
  {
    tm_name = model_name Flash_crowd seed;
    tm_kind = Flash_crowd;
    tm_seed = seed;
    tm_pairs = pairs;
    tm_baseline_flows = nflows;
    tm_classes = [| base; surged |];
    tm_schedule = Array.init 24 (fun h -> if h >= start && h < stop then 1 else 0);
    tm_phase = 0;
    tm_surge = Some (start, stop);
  }

let coremelt ?(seed = 0) topo =
  let pairs, base = calibrated_base ~seed topo in
  let nbase = Array.length base in
  let rng = Rng.create (0xc0de + (seed * 131)) in
  let start = 3 + Rng.int rng 8 in
  let stop = min 24 (start + 1 + Rng.int rng 3) in
  let gamma = 0.3 +. (0.4 *. Rng.float rng) in
  let nf = Topology.num_fibers topo in
  (* One attack flow per fiber span, between the span's own endpoints,
     flooding at γ of the span's total IP capacity during the window —
     the coremelt shape: every link melts at once, no single hot spot. *)
  let attack_pairs = ref [] in
  let attack_rates = ref [] in
  for fb = nf - 1 downto 0 do
    let f = Topology.fiber topo fb in
    let a, b = f.Topology.endpoints in
    let cap =
      List.fold_left
        (fun acc lid -> acc +. (Topology.link topo lid).Topology.capacity)
        0.0
        (Topology.links_lost_on_cut topo fb)
      /. 2.0
    in
    attack_pairs := (a, b) :: !attack_pairs;
    attack_rates := (gamma *. cap) :: !attack_rates
  done;
  let quiet = Array.append base (Array.make nf 0.0) in
  let surge = Array.append base (Array.of_list !attack_rates) in
  {
    tm_name = model_name Coremelt seed;
    tm_kind = Coremelt;
    tm_seed = seed;
    tm_pairs = pairs @ !attack_pairs;
    tm_baseline_flows = nbase;
    tm_classes = [| quiet; surge |];
    tm_schedule = Array.init 24 (fun h -> if h >= start && h < stop then 1 else 0);
    tm_phase = 0;
    tm_surge = Some (start, stop);
  }

let generate ?(seed = 0) kind topo =
  match kind with
  | Gravity -> gravity ~seed topo
  | Diurnal -> diurnal ~seed topo
  | Flash_crowd -> flash_crowd ~seed topo
  | Coremelt -> coremelt ~seed topo

let by_name spec topo =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "Traffic_model.by_name: unknown traffic model %s (known: %s, each \
          optionally suffixed :<seed>)"
         spec
         (String.concat ", " all_names))
  in
  let kind_s, seed =
    match String.index_opt spec ':' with
    | None -> (spec, 0)
    | Some i -> (
      let s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt s with
      | Some seed -> (String.sub spec 0 i, seed)
      | None -> fail ())
  in
  let kind =
    match String.lowercase_ascii kind_s with
    | "gravity" -> Gravity
    | "diurnal" -> Diurnal
    | "flash" -> Flash_crowd
    | "coremelt" -> Coremelt
    | _ -> fail ()
  in
  generate ~seed kind topo

(* Bridge to the static [Traffic.t] consumers (env construction): the 24
   hourly matrices replay the model's schedule, so the env's standing
   demand view agrees with [demands] at every epoch — all built-in
   models have periods dividing 24. *)
let to_traffic t =
  {
    Traffic.pairs = t.tm_pairs;
    base = Array.copy t.tm_classes.(0);
    matrices = Array.init 24 (fun h -> Array.copy t.tm_classes.(class_of t h));
  }
