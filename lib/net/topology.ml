type node = int

type fiber = {
  fid : int;
  fname : string;
  endpoints : node * node;
  length_km : float;
  region : int;
  vendor : int;
}

type link = {
  lid : int;
  src : node;
  dst : node;
  capacity : float;
  fibers : int list;
}

type t = {
  name : string;
  num_nodes : int;
  node_names : string array;
  fibers : fiber array;
  links : link array;
  out_links : int list array;
  links_on_fiber : int list array;
}

let num_regions = 3
let num_vendors = 4

let make ~name ~node_names ~fibers ~links =
  let num_nodes = Array.length node_names in
  let nf = Array.length fibers in
  let fibers =
    Array.mapi
      (fun fid (a, b, length_km) ->
        if a < 0 || a >= num_nodes || b < 0 || b >= num_nodes || a = b then
          invalid_arg "Topology.make: bad fiber endpoints";
        let a, b = if a <= b then (a, b) else (b, a) in
        {
          fid;
          fname = Printf.sprintf "f%d_%s-%s" fid node_names.(a) node_names.(b);
          endpoints = (a, b);
          length_km;
          (* Deterministic pseudo-random attributes from the id: multiply
             by coprime constants and reduce. *)
          region = fid * 7 mod num_regions;
          vendor = fid * 11 mod num_vendors;
        })
      fibers
  in
  let links =
    Array.mapi
      (fun lid (src, dst, capacity, fids) ->
        if src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes || src = dst
        then invalid_arg "Topology.make: bad link endpoints";
        if capacity <= 0.0 then invalid_arg "Topology.make: non-positive capacity";
        if fids = [] then invalid_arg "Topology.make: link rides no fiber";
        List.iter
          (fun f ->
            if f < 0 || f >= nf then invalid_arg "Topology.make: bad fiber reference")
          fids;
        { lid; src; dst; capacity; fibers = fids })
      links
  in
  let out_links = Array.make num_nodes [] in
  Array.iter (fun l -> out_links.(l.src) <- l.lid :: out_links.(l.src)) links;
  Array.iteri (fun i ls -> out_links.(i) <- List.rev ls) out_links;
  let links_on_fiber = Array.make nf [] in
  Array.iter
    (fun l -> List.iter (fun f -> links_on_fiber.(f) <- l.lid :: links_on_fiber.(f)) l.fibers)
    links;
  Array.iteri (fun i ls -> links_on_fiber.(i) <- List.rev ls) links_on_fiber;
  { name; num_nodes; node_names; fibers; links; out_links; links_on_fiber }

(* --------------------------------------------------------------------- *)
(* IP layer generation                                                     *)
(* --------------------------------------------------------------------- *)

(* Deterministic length in km from a fiber index: spreads spans between
   roughly 300 and 2800 km like a continental WAN. *)
let span_length i = 300.0 +. float_of_int ((i * 997) mod 2500)

(* Generate the IP layer over a fiber adjacency, as the paper does for B4
   and IBM (§6.1: optical-layer topologies from the literature, IP layer
   from the ARROW distributions).

   - Every fiber span carries one base undirected IP link (1000 Gbps).
   - [extra] additional undirected links are spread over the fibers with
     deterministic weights, as parallel 500 Gbps wavelengths; every third
     extra link is an "express" link riding two adjacent fiber spans
     (optical bypass), which is what makes single cuts remove several IP
     links at distant routers (Fig. 1b/1c).

   Undirected links are materialized as two directed links sharing the
   fiber list. *)
let generate_ip_layer ~fibers ~extra =
  let nf = Array.length fibers in
  let undirected = ref [] in
  (* Base layer. *)
  Array.iteri
    (fun fid (a, b, _) -> undirected := (a, b, 1000.0, [ fid ]) :: !undirected)
    fibers;
  (* Adjacency of fibers for express links: fiber pairs sharing a node. *)
  let fiber_pairs =
    let acc = ref [] in
    for i = 0 to nf - 1 do
      for j = i + 1 to nf - 1 do
        let a1, b1, _ = fibers.(i) and a2, b2, _ = fibers.(j) in
        let shared =
          if a1 = a2 then Some (b1, a1, b2)
          else if a1 = b2 then Some (b1, a1, a2)
          else if b1 = a2 then Some (a1, b1, b2)
          else if b1 = b2 then Some (a1, b1, a2)
          else None
        in
        match shared with
        | Some (x, _, z) when x <> z -> acc := (i, j, x, z) :: !acc
        | _ -> ()
      done
    done;
    Array.of_list (List.rev !acc)
  in
  (* Weights decide which fibers get parallel wavelengths: heavier fibers
     become the multi-Tbps trunks of Fig. 1b. *)
  let weight fid = 1 + ((fid * 13) mod 5) in
  let order =
    (* Fibers repeated proportionally to weight, cycled. *)
    let l = ref [] in
    for fid = nf - 1 downto 0 do
      for _ = 1 to weight fid do
        l := fid :: !l
      done
    done;
    Array.of_list !l
  in
  let n_order = Array.length order in
  let n_pairs = Array.length fiber_pairs in
  for k = 0 to extra - 1 do
    if n_pairs > 0 && k mod 3 = 2 then begin
      (* Express link across two adjacent spans. *)
      let i, j, x, z = fiber_pairs.((k * 7) mod n_pairs) in
      undirected := (x, z, 500.0, [ i; j ]) :: !undirected
    end
    else begin
      let fid = order.((k * 11) mod n_order) in
      let a, b, _ = fibers.(fid) in
      undirected := (a, b, 500.0, [ fid ]) :: !undirected
    end
  done;
  let undirected = List.rev !undirected in
  let directed =
    List.concat_map
      (fun (a, b, cap, fids) -> [ (a, b, cap, fids); (b, a, cap, fids) ])
      undirected
  in
  Array.of_list directed

let with_lengths spans = Array.mapi (fun i (a, b) -> (a, b, span_length i)) spans

(* --------------------------------------------------------------------- *)
(* Built-in topologies                                                     *)
(* --------------------------------------------------------------------- *)

(* Approximation of the published B4 map: 12 sites, 19 inter-site fiber
   spans (Jain et al., SIGCOMM'13).  Table 3: 19 fibers, 52 IP links. *)
let b4 () =
  let node_names =
    [| "us-w1"; "us-w2"; "us-w3"; "us-c1"; "us-c2"; "us-e1"; "us-e2"; "eu-1";
       "eu-2"; "asia-1"; "asia-2"; "asia-3" |]
  in
  let spans =
    [| (0, 1); (0, 2); (1, 2); (1, 3); (2, 4); (3, 4); (3, 5); (4, 6); (5, 6);
       (5, 7); (6, 8); (7, 8); (7, 9); (8, 10); (9, 10); (9, 11); (10, 11);
       (2, 3); (6, 7) |]
  in
  let fibers = with_lengths spans in
  (* 19 base + 33 extra = 52 undirected IP links. *)
  let links = generate_ip_layer ~fibers ~extra:33 in
  make ~name:"B4" ~node_names ~fibers ~links

(* IBM backbone approximation: 18 sites, 23 spans (ring + chords).
   Table 3: 23 fibers, 85 IP links. *)
let ibm () =
  let n = 18 in
  let node_names = Array.init n (fun i -> Printf.sprintf "ibm%02d" i) in
  let ring = Array.init n (fun i -> (i, (i + 1) mod n)) in
  let chords = [| (0, 9); (2, 11); (4, 14); (6, 15); (8, 17) |] in
  let fibers = with_lengths (Array.append ring chords) in
  (* 23 base + 62 extra = 85 undirected IP links. *)
  let links = generate_ip_layer ~fibers ~extra:62 in
  make ~name:"IBM" ~node_names ~fibers ~links

(* Synthetic stand-in for the confidential TWAN production topology:
   O(50) fibers, O(100) IP links (Table 3 orders of magnitude).  30 sites
   on a ring with deterministic chords. *)
let twan () =
  let n = 30 in
  let node_names = Array.init n (fun i -> Printf.sprintf "twan%02d" i) in
  let ring = Array.init n (fun i -> (i, (i + 1) mod n)) in
  let chords =
    Array.init 20 (fun k ->
        let a = (k * 17) mod n in
        let b = (a + 3 + ((k * 5) mod 11)) mod n in
        if a = b then (a, (b + 1) mod n) else (a, b))
  in
  let fibers = with_lengths (Array.append ring chords) in
  (* 50 base + 52 extra = 102 undirected IP links. *)
  let links = generate_ip_layer ~fibers ~extra:52 in
  make ~name:"TWAN" ~node_names ~fibers ~links

(* k x k grid: one fiber per undirected lattice edge, two directed IP
   links riding it.  Deterministic, any size — the scaling instance for
   the LP bench and the streaming runtime. *)
let grid k =
  if k < 2 then invalid_arg "Topology.grid: k must be >= 2";
  let node i j = (i * k) + j in
  let fibers = ref [] and links = ref [] and nf = ref 0 in
  let add_edge a b =
    let f = !nf in
    incr nf;
    fibers := (a, b, 50.0) :: !fibers;
    links := (b, a, 40.0, [ f ]) :: (a, b, 40.0, [ f ]) :: !links
  in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if j + 1 < k then add_edge (node i j) (node i (j + 1));
      if i + 1 < k then add_edge (node i j) (node (i + 1) j)
    done
  done;
  make
    ~name:(Printf.sprintf "grid%d" k)
    ~node_names:(Array.init (k * k) (Printf.sprintf "n%d"))
    ~fibers:(Array.of_list (List.rev !fibers))
    ~links:(Array.of_list (List.rev !links))

(* --------------------------------------------------------------------- *)
(* Topology zoo                                                            *)
(* --------------------------------------------------------------------- *)

module Zoo = struct
  let min_span_km = 30.0
  let max_span_km = 3000.0
  let max_degree = 8
  let min_avg_degree = 2.0
  let max_avg_degree = 6.0
end

(* Topology_io prints lengths with %g (6 significant digits); rounding
   generated spans to 0.1 km keeps them exactly representable so the
   text round-trip is structural equality. *)
let round_span l =
  let l = Float.max Zoo.min_span_km (Float.min Zoo.max_span_km l) in
  Float.round (l *. 10.0) /. 10.0

(* Internet2 Abilene: the canonical 11-PoP research backbone, with span
   lengths approximating the published fiber routes (km).  Small enough
   that every cut matters, real enough that degree and length
   distributions are not an artifact of a generator. *)
let abilene () =
  let node_names =
    [| "sea"; "svl"; "lax"; "den"; "kc"; "hou"; "atl"; "dc"; "ny"; "chi"; "ind" |]
  in
  let spans =
    [| (0, 1, 1300.0); (0, 3, 2100.0); (1, 2, 600.0); (1, 3, 1900.0);
       (2, 5, 2500.0); (3, 4, 970.0); (4, 5, 1330.0); (4, 10, 790.0);
       (5, 6, 1300.0); (6, 10, 850.0); (6, 7, 1000.0); (7, 8, 330.0);
       (8, 9, 1150.0); (9, 10, 290.0) |]
  in
  (* 14 base + 14 extra = 28 undirected IP links. *)
  let links = generate_ip_layer ~fibers:spans ~extra:14 in
  make ~name:"Abilene" ~node_names ~fibers:spans ~links

(* Seeded random WAN family: sites placed uniformly on a plane, a ring
   over the angular order (connectivity by construction), then Waxman
   chords — short hops exponentially more likely — with a degree cap.
   Span length is the euclidean distance with a 1.2 routing detour
   factor, clamped to the declared Zoo bounds.  All randomness comes
   from one [Prete_util.Rng] stream drawn in a fixed order, so the same
   seed always yields a bit-identical topology. *)
let wan_family ~name ~seed ~sites ~chords ~plane_km:(w, h) ~extra =
  if sites < 4 then invalid_arg "Topology.wan: need at least 4 sites";
  let rng = Prete_util.Rng.create (0x5a11 + (seed * 0x9e37) + (sites * 131)) in
  let pos = Array.make sites (0.0, 0.0) in
  for i = 0 to sites - 1 do
    let x = Prete_util.Rng.uniform rng 0.0 w in
    let y = Prete_util.Rng.uniform rng 0.0 h in
    pos.(i) <- (x, y)
  done;
  let cx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 pos /. float_of_int sites in
  let cy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 pos /. float_of_int sites in
  let order = Array.init sites (fun i -> i) in
  Array.sort
    (fun i j ->
      let (xi, yi) = pos.(i) and (xj, yj) = pos.(j) in
      match compare (Float.atan2 (yi -. cy) (xi -. cx)) (Float.atan2 (yj -. cy) (xj -. cx)) with
      | 0 -> compare i j
      | c -> c)
    order;
  let dist i j =
    let (xi, yi) = pos.(i) and (xj, yj) = pos.(j) in
    Float.hypot (xi -. xj) (yi -. yj)
  in
  let deg = Array.make sites 0 in
  let have = Hashtbl.create (sites * 4) in
  let spans = ref [] in
  let add a b =
    Hashtbl.replace have (min a b, max a b) ();
    deg.(a) <- deg.(a) + 1;
    deg.(b) <- deg.(b) + 1;
    spans := (a, b, round_span (1.2 *. dist a b)) :: !spans
  in
  for k = 0 to sites - 1 do
    add order.(k) order.((k + 1) mod sites)
  done;
  let diag = Float.hypot w h in
  let added = ref 0 and attempts = ref 0 in
  while !added < chords && !attempts < 400 * chords do
    incr attempts;
    let a = Prete_util.Rng.int rng sites in
    let b = Prete_util.Rng.int rng sites in
    if
      a <> b
      && deg.(a) < Zoo.max_degree
      && deg.(b) < Zoo.max_degree
      && (not (Hashtbl.mem have (min a b, max a b)))
      && Prete_util.Rng.bernoulli rng (Float.exp (-.dist a b /. (0.3 *. diag)))
    then begin
      add a b;
      incr added
    end
  done;
  let fibers = Array.of_list (List.rev !spans) in
  let links = generate_ip_layer ~fibers ~extra in
  make ~name
    ~node_names:(Array.init sites (Printf.sprintf "s%02d"))
    ~fibers ~links

let wan ?(seed = 0) sites =
  let name =
    if seed = 0 then Printf.sprintf "wan%d" sites
    else Printf.sprintf "wan%dx%d" sites seed
  in
  wan_family ~name ~seed ~sites ~chords:(sites / 2)
    ~plane_km:(4200.0, 2400.0) ~extra:sites

(* SURFnet-class national research network: ~50 PoPs, ~68 spans, dense
   short-haul fiber (the onset evaluation's surfNet shape).  The small
   plane makes most raw distances fall below the Zoo floor, giving the
   metro-dominated length distribution of a national NREN. *)
let surfnet () =
  wan_family ~name:"SURFnet" ~seed:7 ~sites:50 ~chords:18
    ~plane_km:(320.0, 260.0) ~extra:30

let names () = [ "IBM"; "B4"; "TWAN"; "Abilene"; "SURFnet" ]

let known_patterns = [ "grid<K>"; "wan<SITES>"; "wan<SITES>x<SEED>" ]

let by_name s =
  let unknown () =
    invalid_arg
      (Printf.sprintf "Topology.by_name: unknown topology %s (known: %s)" s
         (String.concat ", " (names () @ known_patterns)))
  in
  let digits d = d <> "" && String.for_all (fun c -> c >= '0' && c <= '9') d in
  let after prefix lower =
    let n = String.length prefix in
    if String.length lower > n && String.sub lower 0 n = prefix then
      Some (String.sub lower n (String.length lower - n))
    else None
  in
  match String.uppercase_ascii s with
  | "B4" -> b4 ()
  | "IBM" -> ibm ()
  | "TWAN" -> twan ()
  | "ABILENE" -> abilene ()
  | "SURFNET" -> surfnet ()
  | _ -> (
    let lower = String.lowercase_ascii s in
    match after "grid" lower with
    | Some d when digits d -> grid (int_of_string d)
    | Some _ -> unknown ()
    | None -> (
      match after "wan" lower with
      | Some spec -> (
        match String.index_opt spec 'x' with
        | None when digits spec -> wan (int_of_string spec)
        | Some i ->
          let n = String.sub spec 0 i in
          let sd = String.sub spec (i + 1) (String.length spec - i - 1) in
          if digits n && digits sd then wan ~seed:(int_of_string sd) (int_of_string n)
          else unknown ()
        | None -> unknown ())
      | None -> unknown ()))

let all () = [ ibm (); b4 (); twan (); abilene (); surfnet () ]

let link t i =
  if i < 0 || i >= Array.length t.links then invalid_arg "Topology.link: out of range";
  t.links.(i)

let fiber t i =
  if i < 0 || i >= Array.length t.fibers then invalid_arg "Topology.fiber: out of range";
  t.fibers.(i)

let num_links t = Array.length t.links
let num_fibers t = Array.length t.fibers

let links_lost_on_cut t fid =
  if fid < 0 || fid >= num_fibers t then
    invalid_arg "Topology.links_lost_on_cut: out of range";
  t.links_on_fiber.(fid)

let capacity_lost_on_cut t fid =
  List.fold_left
    (fun acc lid -> acc +. t.links.(lid).capacity)
    0.0
    (links_lost_on_cut t fid)

let neighbors t v =
  if v < 0 || v >= t.num_nodes then invalid_arg "Topology.neighbors: out of range";
  List.map (fun lid -> (lid, t.links.(lid).dst)) t.out_links.(v)

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d nodes, %d fibers, %d directed IP links (%d undirected)"
    t.name t.num_nodes (num_fibers t) (num_links t)
    (num_links t / 2)
