(** Traffic demands.

    Demands follow a gravity model over deterministic site weights and are
    replicated into 24 hourly matrices with a diurnal profile (Table 3 lists
    24 traffic matrices per topology).  Demand magnitudes are calibrated so
    that at demand scale 1 the network runs at a comfortable utilization,
    leaving room for the ×1–×6 demand-scale sweeps of Figs. 13/15. *)

type t = {
  pairs : (Topology.node * Topology.node) list;  (** Flow endpoints. *)
  base : float array;  (** Gbps per flow at scale 1, epoch-0 profile. *)
  matrices : float array array;  (** 24 hourly matrices (epoch × flow). *)
}

val default_num_flows : Topology.t -> int
(** Flow count used when [generate]'s [?num_flows] is omitted: the
    Table 3 tunnel counts / 4 for the named topologies, otherwise
    [min 50 (n·(n−1)/2)].  Exposed so {!Traffic_model} builds its
    baselines over the same flow budget. *)

val generate : ?num_flows:int -> ?utilization:float -> Topology.t -> t
(** [generate topo] picks the heaviest [num_flows] gravity pairs (default:
    Table 3 tunnel counts / 4 for known topologies) and scales total demand
    so that routing every flow on its shortest path loads the busiest link
    to [utilization] (default 0.75) of capacity — calibrated so the
    protection-vs-capacity tradeoff plays out inside the ×1–×6
    demand-scale sweeps of the evaluation. *)

val demand : t -> scale:float -> epoch:int -> float array
(** Per-flow demand vector at a demand scale and hourly epoch (mod 24). *)

val total : t -> scale:float -> epoch:int -> float

val diurnal_multiplier : int -> float
(** The hourly profile: trough ≈0.6 around 6am, peak ≈1.0 around 9pm. *)
