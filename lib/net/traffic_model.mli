(** Traffic-model library: pure seeded demand-sequence generators.

    Where {!Traffic} bakes one gravity/diurnal matrix set, this module
    generates {e workload classes} for the scenario sweeps: gravity
    baselines, diurnal cycles, flash crowds, and coremelt-style
    every-link flood surges.  A model is a small set of demand vectors
    ({i classes}) plus a periodic schedule mapping epochs to classes —
    everything derived from one seeded {!Prete_util.Rng} stream drawn in
    a fixed order, so the same [(kind, seed, topology)] always yields a
    bit-identical demand sequence.

    The simulator consumes models through
    [Simulate.Internal.eval_epochs_classes] / [Simulate.run_model]; the
    runtime through its [traffic] config field; both build their
    environment over the model via {!to_traffic}. *)

type kind = Gravity | Diurnal | Flash_crowd | Coremelt

val kind_name : kind -> string
(** ["gravity"], ["diurnal"], ["flash"], ["coremelt"]. *)

val all_kinds : kind list

val all_names : string list
(** [List.map kind_name all_kinds]. *)

type t = {
  tm_name : string;  (** ["<kind>"] or ["<kind>:<seed>"]. *)
  tm_kind : kind;
  tm_seed : int;
  tm_pairs : (Topology.node * Topology.node) list;
      (** Flow endpoints; baseline flows first, then (coremelt only) one
          attack flow per fiber span. *)
  tm_baseline_flows : int;
      (** Number of leading flows carrying the baseline matrix. *)
  tm_classes : float array array;
      (** Demand classes (Gbps per flow at scale 1); class 0 is the
          baseline. *)
  tm_schedule : int array;
      (** Periodic epoch → class map (period = length). *)
  tm_phase : int;  (** Diurnal peak hour; 0 for the other kinds. *)
  tm_surge : (int * int) option;
      (** Surge window [\[start, stop)) in schedule phase, when the
          model has one. *)
}

val name : t -> string
val num_flows : t -> int
val period : t -> int

val class_of : t -> int -> int
(** Class index active at an epoch (pure; negative epochs wrap). *)

val demands : t -> scale:float -> epoch:int -> float array
(** Fresh per-flow demand vector for the epoch's class, scaled.  Raises
    [Invalid_argument] on a negative scale. *)

val baseline : t -> float array
(** Copy of class 0 (unscaled). *)

val gravity_parts : seed:int -> Topology.t -> float array * float array array
(** Seeded site masses [m] and the full gravity matrix: entry (i,j) is
    [m_i·m_j/S] off the diagonal (S total mass), zero on it, so row i
    and column i both sum to [m_i·(S − m_i)/S]. *)

val gravity : ?seed:int -> Topology.t -> t
(** Static gravity baseline: one class, calibrated like
    [Traffic.generate] to 0.75 busiest-link utilization at scale 1. *)

val diurnal : ?seed:int -> Topology.t -> t
(** 24-hour cosine cycle over the gravity baseline with a seeded peak
    hour ([tm_phase]) and amplitude: multiplier is exactly 1.0 at the
    peak, 1 − 2·amp at the trough. *)

val flash_crowd : ?seed:int -> Topology.t -> t
(** Gravity baseline plus a seeded surge window ([tm_surge]) during
    which ~1/8 of the flows burst to 4–8× their baseline demand.
    Outside the window the demand vector is exactly the baseline. *)

val coremelt : ?seed:int -> Topology.t -> t
(** Coremelt-style every-link flood: one attack flow per fiber span
    between the span's endpoints, flooding at γ ∈ [0.3, 0.7] of the
    span's total IP capacity during the surge window and exactly zero
    outside it.  Baseline flows are untouched. *)

val generate : ?seed:int -> kind -> Topology.t -> t

val by_name : string -> Topology.t -> t
(** ["gravity"], ["diurnal"], ["flash"], ["coremelt"], each optionally
    suffixed [":<seed>"] (e.g. ["flash:7"]).  Raises [Invalid_argument]
    listing the known model names otherwise. *)

val to_traffic : t -> Traffic.t
(** Bridge for [Availability.make_env ~traffic]: 24 hourly matrices
    replaying the model's schedule (all built-in periods divide 24),
    with the model's pairs and baseline. *)
