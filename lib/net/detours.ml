type entry = {
  e_tunnel : int;
  e_detour : int;
  e_links : Routing.path;
  e_bottleneck : float;
}

type per_fiber = {
  pf_fiber : int;
  pf_ts : Tunnels.t;
  pf_entries : entry list;
  pf_flows : int list;
}

(* [users] maps each link used by some detour path of the fiber to the
   base tunnels crossing it — precomputed so a splice reads the residual
   headroom of exactly the links it may load, instead of recomputing a
   full link-load vector per activation. *)
type table = { tb : per_fiber; tb_links : int array; tb_users : int list array }

type t = {
  base : Tunnels.t;
  tables : table option array;
  bypass_cache : (int * int * int * int list, Routing.path option) Hashtbl.t;
      (* (fiber, src, dst, tunnel path) -> memoized bypass search *)
}

let base t = t.base

(* Modeled activation latency: flow-table updates fan out from the
   failure-local switches, so the cost is a constant plus a per-affected-
   flow term — never a solve. *)
let detour_base_s = 0.010
let detour_per_flow_s = 0.002

(* The bypass for one tunnel: keep the healthy prefix and suffix, replace
   the span from the first to the last hop riding the failed fiber with a
   fiber-avoiding segment that revisits no retained node (so the spliced
   path stays loop-free).  When no such segment exists, fall back to a
   whole-path replacement avoiding the fiber. *)
let bypass (ts : Tunnels.t) fid (tn : Tunnels.tunnel) =
  let topo = ts.Tunnels.topo in
  let rides_fiber lid = List.mem fid (Topology.link topo lid).Topology.fibers in
  let links = Array.of_list tn.Tunnels.links in
  let nodes = Array.of_list (Routing.path_nodes topo tn.Tunnels.links) in
  let n = Array.length links in
  let first = ref (-1) and last = ref (-1) in
  Array.iteri
    (fun i lid ->
      if rides_fiber lid then begin
        if !first < 0 then first := i;
        last := i
      end)
    links;
  if !first < 0 then None (* does not traverse the fiber *)
  else begin
    let i = !first and j = !last in
    let enter = nodes.(i) and exit_ = nodes.(j + 1) in
    let prefix = Array.to_list (Array.sub links 0 i) in
    let suffix = Array.to_list (Array.sub links (j + 1) (n - j - 1)) in
    let retained =
      List.concat
        [
          Array.to_list (Array.sub nodes 0 i);
          Array.to_list (Array.sub nodes (j + 2) (Array.length nodes - j - 2));
        ]
    in
    let forbidden_nodes v = v <> enter && v <> exit_ && List.mem v retained in
    let f = ts.Tunnels.flows.(tn.Tunnels.owner) in
    let whole_replacement () =
      Routing.shortest_path topo ~forbidden_links:rides_fiber
        ~src:f.Tunnels.src ~dst:f.Tunnels.dst ()
    in
    match
      Routing.shortest_path topo ~forbidden_links:rides_fiber ~forbidden_nodes
        ~src:enter ~dst:exit_ ()
    with
    | Some seg ->
      let p = prefix @ seg @ suffix in
      if Routing.path_valid topo ~src:f.Tunnels.src ~dst:f.Tunnels.dst p then
        Some p
      else whole_replacement ()
    | None -> whole_replacement ()
  end

let bottleneck topo p =
  List.fold_left
    (fun b lid -> Float.min b (Topology.link topo lid).Topology.capacity)
    infinity p

(* Extend the base tunnel set with one detour tunnel per (tunnel, path)
   pair, ids appended after the base ids in pair order. *)
let extend (ts : Tunnels.t) pairs =
  let nt = Array.length ts.Tunnels.tunnels in
  let detour_tunnels =
    List.mapi
      (fun i ((tn : Tunnels.tunnel), p) ->
        { Tunnels.tunnel_id = nt + i; owner = tn.Tunnels.owner; links = p })
      pairs
  in
  let tunnels = Array.append ts.Tunnels.tunnels (Array.of_list detour_tunnels) in
  let of_flow = Array.copy ts.Tunnels.of_flow in
  List.iter
    (fun (tn : Tunnels.tunnel) ->
      of_flow.(tn.Tunnels.owner) <-
        of_flow.(tn.Tunnels.owner) @ [ tn.Tunnels.tunnel_id ])
    detour_tunnels;
  { Tunnels.topo = ts.Tunnels.topo; flows = ts.Tunnels.flows; tunnels; of_flow }

let build_table (ts : Tunnels.t) cache fid =
  let topo = ts.Tunnels.topo in
  let affected = Tunnels.tunnels_through_fiber ts fid in
  if affected = [] then None
  else begin
    let pairs =
      List.filter_map
        (fun (tn : Tunnels.tunnel) ->
          let f = ts.Tunnels.flows.(tn.Tunnels.owner) in
          let key = (fid, f.Tunnels.src, f.Tunnels.dst, tn.Tunnels.links) in
          let p =
            match Hashtbl.find_opt cache key with
            | Some p -> p
            | None ->
              let p = bypass ts fid tn in
              Hashtbl.add cache key p;
              p
          in
          Option.map (fun p -> (tn, p)) p)
        affected
    in
    (* Capacity headroom validation: a detour whose bottleneck is not
       strictly positive can never carry rerouted traffic. *)
    let pairs =
      List.filter (fun (_, p) -> bottleneck topo p > 0.0) pairs
    in
    if pairs = [] then None
    else begin
      let pf_ts = extend ts pairs in
      let nt = Array.length ts.Tunnels.tunnels in
      let entries =
        List.mapi
          (fun i ((tn : Tunnels.tunnel), p) ->
            {
              e_tunnel = tn.Tunnels.tunnel_id;
              e_detour = nt + i;
              e_links = p;
              e_bottleneck = bottleneck topo p;
            })
          pairs
      in
      let flows =
        List.sort_uniq compare
          (List.map (fun ((tn : Tunnels.tunnel), _) -> tn.Tunnels.owner) pairs)
      in
      (* Link -> crossing base tunnels, restricted to links a detour of
         this fiber can load. *)
      let used = Hashtbl.create 16 in
      List.iter
        (fun e -> List.iter (fun lid -> Hashtbl.replace used lid ()) e.e_links)
        entries;
      let links =
        Array.of_list
          (List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) used []))
      in
      let users = Array.make (Array.length links) [] in
      let slot = Hashtbl.create 16 in
      Array.iteri (fun i lid -> Hashtbl.replace slot lid i) links;
      Array.iter
        (fun (tn : Tunnels.tunnel) ->
          List.iter
            (fun lid ->
              match Hashtbl.find_opt slot lid with
              | Some i -> users.(i) <- tn.Tunnels.tunnel_id :: users.(i)
              | None -> ())
            tn.Tunnels.links)
        ts.Tunnels.tunnels;
      Some
        {
          tb = { pf_fiber = fid; pf_ts; pf_entries = entries; pf_flows = flows };
          tb_links = links;
          tb_users = users;
        }
    end
  end

let build_with cache (ts : Tunnels.t) =
  let nf = Topology.num_fibers ts.Tunnels.topo in
  {
    base = ts;
    tables = Array.init nf (build_table ts cache);
    bypass_cache = cache;
  }

let build ts = build_with (Hashtbl.create 256) ts

let rebuild t ts = build_with t.bypass_cache ts

let for_fiber t fid =
  if fid < 0 || fid >= Array.length t.tables then None
  else Option.map (fun tb -> tb.tb) t.tables.(fid)

let affected_flows t fid =
  match for_fiber t fid with None -> [] | Some pf -> pf.pf_flows

let install_latency_s t ~fiber =
  detour_base_s
  +. (detour_per_flow_s *. float_of_int (List.length (affected_flows t fiber)))

let latency_bound_s t =
  detour_base_s
  +. detour_per_flow_s *. float_of_int (Array.length t.base.Tunnels.flows)

let splice ?(headroom = 0.9) t ~fiber ~alloc =
  if
    fiber < 0
    || fiber >= Array.length t.tables
    || Array.length alloc <> Array.length t.base.Tunnels.tunnels
  then None
  else
    match t.tables.(fiber) with
    | None -> None
    | Some { tb = pf; tb_links; tb_users } ->
      let topo = t.base.Tunnels.topo in
      (* Every tunnel with an entry is evacuated: during the cut it
         delivers nothing, so the patched plan zeroes it and its old-path
         load is excluded from the residuals below.  This is what lets a
         detour activate under a saturated optimal plan — the only spare
         capacity is the capacity the failure itself frees. *)
      let evac = Hashtbl.create (List.length pf.pf_entries) in
      List.iter (fun e -> Hashtbl.replace evac e.e_tunnel ()) pf.pf_entries;
      (* Residual headroom per detour link under the surviving part of
         the installed allocation: fill up to [headroom] of capacity,
         never beyond. *)
      let residual = Hashtbl.create (Array.length tb_links) in
      Array.iteri
        (fun i lid ->
          let load =
            List.fold_left
              (fun acc tid ->
                if Hashtbl.mem evac tid then acc else acc +. alloc.(tid))
              0.0 tb_users.(i)
          in
          Hashtbl.replace residual lid
            ((headroom *. (Topology.link topo lid).Topology.capacity) -. load))
        tb_links;
      let ndet = List.length pf.pf_entries in
      let patched = Array.append alloc (Array.make ndet 0.0) in
      let rerouted = ref 0 in
      let touched = Hashtbl.create 8 in
      let res lid = Option.value ~default:0.0 (Hashtbl.find_opt residual lid) in
      List.iter
        (fun e ->
          let want = patched.(e.e_tunnel) in
          (* The broken tunnel carries nothing during the cut either way;
             the plan says so explicitly. *)
          patched.(e.e_tunnel) <- 0.0;
          if want > 1e-9 then begin
            let room =
              List.fold_left (fun r lid -> Float.min r (res lid)) infinity
                e.e_links
            in
            let r = Float.min want (Float.max 0.0 room) in
            if r > 1e-9 then begin
              patched.(e.e_detour) <- r;
              List.iter
                (fun lid -> Hashtbl.replace residual lid (res lid -. r))
                e.e_links;
              incr rerouted;
              Hashtbl.replace touched
                pf.pf_ts.Tunnels.tunnels.(e.e_tunnel).Tunnels.owner ()
            end
          end)
        pf.pf_entries;
      if !rerouted = 0 then None
      else Some (pf.pf_ts, patched, !rerouted, Hashtbl.length touched)
