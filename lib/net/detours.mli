(** Precomputed per-fiber detours: the localized fast-recovery tier.

    For every fiber, and every tunnel that traverses it, this module
    precomputes a {e bypass}: the tunnel's path with the span that rides
    the fiber replaced by a fiber-avoiding segment (falling back to a
    whole-path replacement when no loop-free segment exists).  When a
    fiber is predicted to fail, {!splice} moves allocation from the
    doomed tunnels onto their bypasses — touching only the affected
    tunnels, bounded by the capacity headroom left on the bypass links —
    with no LP solve anywhere on the path.  The patched allocation is
    indexed by an {e extended} tunnel set (base tunnels plus one detour
    tunnel per rerouted base tunnel), so downstream validation and
    evaluation treat it like any other plan.

    Everything here is a pure function of topology + tunnel set + failed
    fiber: tables are built in fiber/tunnel-id order from deterministic
    shortest-path queries, so detour choice is identical at any domain
    count (the bit-identical-replay contract of the streaming runtime).

    The expensive part of a rebuild — the per-tunnel bypass search — is
    memoized across {!rebuild} calls keyed by (fiber, endpoints, path),
    so an incremental tunnel-set change only pays for the tunnels that
    actually changed. *)

type entry = {
  e_tunnel : int;  (** Affected base tunnel id. *)
  e_detour : int;  (** Its detour tunnel id in the extended set. *)
  e_links : Routing.path;  (** The full detour path. *)
  e_bottleneck : float;  (** Min link capacity along the detour (Gbps). *)
}

type per_fiber = {
  pf_fiber : int;
  pf_ts : Tunnels.t;
      (** Extended tunnel set: the base tunnels followed by one detour
          tunnel per entry (same flows, extended [of_flow]). *)
  pf_entries : entry list;  (** Ascending [e_tunnel]. *)
  pf_flows : int list;  (** Flows with at least one entry, ascending. *)
}

type t

val build : Tunnels.t -> t
(** Precompute detour tables for every fiber of the tunnel set's
    topology.  A fiber with no traversing tunnel — or none of whose
    tunnels admit a fiber-avoiding bypass — gets no table. *)

val rebuild : t -> Tunnels.t -> t
(** [rebuild t ts] is {!build}[ ts] except that bypass searches already
    answered by [t] (same fiber, same endpoints, same path) are reused
    instead of recomputed — the incremental path for tunnel-set changes
    (e.g. Algorithm 1 updates).  The result is structurally identical to
    a fresh {!build}. *)

val base : t -> Tunnels.t
(** The tunnel set the tables were built for. *)

val for_fiber : t -> int -> per_fiber option
(** The fiber's detour table; [None] when out of range, untraversed, or
    unbypassable. *)

val affected_flows : t -> int -> int list
(** Flows with a detour entry for the fiber (ascending); [[]] when
    {!for_fiber} is [None]. *)

val splice :
  ?headroom:float ->
  t ->
  fiber:int ->
  alloc:float array ->
  (Tunnels.t * float array * int * int) option
(** [splice t ~fiber ~alloc] evacuates every tunnel through [fiber]
    that has a precomputed detour — its allocation is zeroed (during
    the cut it delivers nothing either way) — and moves as much of it
    as fits onto the detour.  The move is bounded by the residual
    capacity of the detour's links under the {e surviving} allocation:
    evacuated old-path load is excluded, which is what lets detours
    activate under a saturated optimal plan (the only spare capacity is
    the capacity the failure itself frees), and a link is never filled
    past [headroom] (default 0.9) of its capacity.  Entries are
    processed in tunnel-id order, so the result is deterministic.

    Returns [(extended_ts, patched_alloc, tunnels_rerouted,
    flows_patched)], or [None] when the fiber has no table, [alloc] is
    not indexed by the base tunnel set, or no allocation could be moved.
    The patched allocation never exceeds any link's capacity if [alloc]
    did not, per-flow totals never increase, and each flow's surviving
    allocation (tunnels avoiding [fiber], detours included) never
    decreases — work is O(affected tunnels × detour length),
    independent of any LP. *)

val install_latency_s : t -> fiber:int -> float
(** Modeled switch-over latency for activating the fiber's detours:
    a constant base plus a per-affected-flow term — O(affected-flows)
    by construction, no solver anywhere. *)

val latency_bound_s : t -> float
(** Upper bound of {!install_latency_s} over all fibers (the base term
    plus the per-flow term at the total flow count). *)
