(** Execution-pool telemetry, in the style of {!Prete_lp.Solver_stats}.

    A snapshot of a {!Pool.t}'s counters since creation (or the last
    {!Pool.reset_stats}): how many fork-join jobs ran, how many chunk
    tasks they decomposed into, how many of those tasks were obtained by
    work stealing rather than from the executing lane's own deque, and
    the per-lane busy wall clocks (lane 0 is the caller). *)

type t = {
  domains : int;  (** Lanes in the pool (spawned domains + the caller). *)
  jobs : int;  (** Fork-join jobs submitted (parallel and inline). *)
  tasks : int;  (** Chunk tasks executed across all jobs. *)
  steals : int;  (** Tasks executed by a lane that stole them. *)
  inline_jobs : int;
      (** Jobs that ran sequentially inline: single-lane pools,
          single-chunk inputs, and reentrant calls from inside a running
          job (nested parallelism never deadlocks, it serializes). *)
  busy_s : float array;  (** Per-lane busy wall seconds, index = lane. *)
}

val busy_total : t -> float
(** Sum of the per-lane busy walls. *)

val to_json : t -> string
(** One-line JSON object — no external JSON dependency. *)

val pp : Format.formatter -> t -> unit
