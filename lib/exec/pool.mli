(** Deterministic fork-join domain pool.

    A fixed set of worker domains ({!create}) executes chunked
    [parallel_for] / [parallel_map] jobs submitted by the owning domain.
    The pool is built only on [Stdlib.Domain] + [Mutex]/[Condition] (no
    external dependency) and is designed around one contract:

    {b Determinism.}  Results are bit-identical at any domain count —
    [domains = 1] and [domains = 64] produce the same bits.  Three rules
    make this hold:

    + the chunk decomposition depends only on the input size and the
      (caller-supplied or default) chunk size, {e never} on the domain
      count or on scheduling;
    + each chunk writes only to its own slots / accumulators, so the
      merged result is a pure function of the chunk decomposition —
      callers reduce per-chunk partials in chunk order;
    + randomized workloads pre-split one RNG substream per chunk or per
      item with [Prete_util.Rng.split] {e before} submitting, so draw
      sequences never depend on which lane runs a chunk.

    Scheduling is a simple work-stealing scheme: chunk indices are dealt
    round-robin onto per-lane deques; a lane pops from its own deque front
    and steals from the back of others when it runs dry.  Stealing moves
    {e where} a chunk runs, never {e what} it computes.

    {b Reentrancy.}  A pool accepts one fork-join job at a time.  A
    nested submission (from inside a running chunk) or a concurrent
    submission from another domain runs the job sequentially inline on
    the submitting domain — identical results, no deadlock.

    Exceptions raised by a chunk are caught, the remaining chunks still
    run, and the first exception is re-raised on the submitting domain
    with its backtrace once the job completes. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool of [domains] lanes total: the
    caller participates as lane 0 and [domains - 1] worker domains are
    spawned.  [domains] defaults to {!default_domains}[ ()] and is
    clamped to [\[1, 64\]].  [domains = 1] spawns nothing and runs every
    job inline. *)

val domains : t -> int
(** Total lanes (spawned workers + the caller). *)

val default_domains : unit -> int
(** The [PRETE_DOMAINS] environment variable parsed as a positive
    integer; 1 when unset or unparsable. *)

val default : unit -> t
(** A process-wide shared pool sized by {!default_domains}, created on
    first use and shut down at exit.  This is what the library entry
    points use when no explicit pool is passed. *)

val sequential_cutoff : int
(** Default-chunked jobs with [n <= sequential_cutoff] collapse to one
    chunk and run inline on the submitting domain — the fan-out overhead
    dwarfs any parallel win for tiny loops.  The cutoff is a function of
    the input size only (never lanes or load), so chunk decompositions —
    and thus chunk-ordered reductions — are identical at every domain
    count.  An explicit [~chunk] bypasses it: callers with heavy bodies
    (per-state LP solves) opt into fan-out regardless of [n]. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~chunk n body] splits [\[0, n)] into contiguous
    chunks of size [chunk] (default [max 1 ((n + 63) / 64)], collapsed to
    a single chunk at or below {!sequential_cutoff} — a function of [n]
    only) and calls [body lo hi] once per chunk, [lo] inclusive,
    [hi] exclusive, across the pool's lanes.  [body] must confine its
    writes to chunk-owned state.  No-op for [n <= 0].  Raises
    [Invalid_argument] on non-positive [chunk]. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] with the applications
    distributed over the pool; result slot [i] is [f xs.(i)] regardless
    of scheduling.  [f] must be safe to run concurrently against itself
    on distinct elements. *)

val parallel_iter : t -> ?chunk:int -> ('a -> unit) -> 'a array -> unit
(** [parallel_iter pool f xs] applies [f] to every element, distributed
    over the pool.  [f] is run for side effects; to keep the
    determinism contract each application must write only state it owns
    (e.g. its own slot of a pre-sized results matrix — how the sharded
    runtime runs its per-(epoch × shard) tasks). *)

val stats : t -> Pool_stats.t
(** Snapshot of the pool's counters since creation or the last
    {!reset_stats}. *)

val reset_stats : t -> unit

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Jobs submitted after shutdown
    run sequentially inline. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] against a fresh pool ([domains] lanes, default
    {!default_domains}) and shuts it down when [f] returns or raises —
    the scoped form every CLI entry point uses. *)
