type t = {
  domains : int;
  jobs : int;
  tasks : int;
  steals : int;
  inline_jobs : int;
  busy_s : float array;
}

let busy_total t = Array.fold_left ( +. ) 0.0 t.busy_s

(* Hand-rolled JSON, matching Solver_stats: the repo carries no JSON
   dependency and the emitted structure is flat. *)
let to_json t =
  let busy =
    t.busy_s |> Array.to_list
    |> List.map (fun s -> Printf.sprintf "%.6f" s)
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"domains\": %d, \"jobs\": %d, \"tasks\": %d, \"steals\": %d, \
     \"inline_jobs\": %d, \"busy_s\": [%s], \"busy_total_s\": %.6f}"
    t.domains t.jobs t.tasks t.steals t.inline_jobs busy (busy_total t)

let pp ppf t =
  Format.fprintf ppf "domains=%d jobs=%d tasks=%d steals=%d inline=%d busy=%.3fs"
    t.domains t.jobs t.tasks t.steals t.inline_jobs (busy_total t)
