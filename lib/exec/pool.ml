(* Fork-join domain pool with per-lane work-stealing deques.

   Determinism contract (see the .mli): the chunk decomposition is a
   function of the input size alone, every chunk owns its writes, and
   stealing only relocates execution.  Under that contract the merged
   result is bit-identical at any domain count. *)

(* Chunk indices owned by one lane.  The owner pops from the front (so a
   lane executes its share roughly in submission order), thieves take
   from the back.  Guarded by a per-deque mutex: a job has at most a few
   hundred chunks, so contention is negligible. *)
type deque = {
  dm : Mutex.t;
  items : int array;
  mutable lo : int;  (* next owner slot *)
  mutable hi : int;  (* one past the last live slot *)
}

type job = {
  j_csize : int;
  j_n : int;
  j_body : int -> int -> unit;
  j_deques : deque array;
  j_remaining : int Atomic.t;
  j_failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  lanes : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for a new job *)
  done_cv : Condition.t;  (* the submitter waits here for completion *)
  mutable job : job option;
  mutable gen : int;  (* bumped per submitted job *)
  mutable stop : bool;
  busy : bool Atomic.t;  (* one fork-join job at a time; losers run inline *)
  (* stats *)
  jobs : int Atomic.t;
  tasks : int Atomic.t;
  steals : int Atomic.t;
  inline_jobs : int Atomic.t;
  busy_s : float array;  (* per lane; each slot written by its lane only *)
}

let domains t = t.lanes

let default_domains () =
  match Sys.getenv_opt "PRETE_DOMAINS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n 64
    | _ -> 1)

(* ------------------------------------------------------------------ *)
(* Job execution                                                        *)
(* ------------------------------------------------------------------ *)

let pop_own d =
  Mutex.lock d.dm;
  let r =
    if d.lo < d.hi then begin
      let v = d.items.(d.lo) in
      d.lo <- d.lo + 1;
      Some v
    end
    else None
  in
  Mutex.unlock d.dm;
  r

let steal_from d =
  Mutex.lock d.dm;
  let r =
    if d.lo < d.hi then begin
      let v = d.items.(d.hi - 1) in
      d.hi <- d.hi - 1;
      Some v
    end
    else None
  in
  Mutex.unlock d.dm;
  r

let exec_chunk pool job c =
  let lo = c * job.j_csize in
  let hi = min job.j_n (lo + job.j_csize) in
  (try job.j_body lo hi
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set job.j_failed None (Some (e, bt))));
  if Atomic.fetch_and_add job.j_remaining (-1) = 1 then begin
    (* Last chunk: wake the submitter.  Taking the pool mutex orders the
       broadcast against the submitter's remaining-check-then-wait. *)
    Mutex.lock pool.m;
    Condition.broadcast pool.done_cv;
    Mutex.unlock pool.m
  end

(* Drain the job from [lane]'s point of view: own deque first, then
   steal round-robin from the others. *)
let work pool job lane =
  let t0 = Unix.gettimeofday () in
  let nlanes = Array.length job.j_deques in
  let own = job.j_deques.(lane) in
  let rec own_loop () =
    match pop_own own with
    | Some c ->
      exec_chunk pool job c;
      own_loop ()
    | None -> steal_loop 1
  and steal_loop k =
    if k < nlanes then begin
      match steal_from job.j_deques.((lane + k) mod nlanes) with
      | Some c ->
        Atomic.incr pool.steals;
        exec_chunk pool job c;
        (* The victim may have more; also our own deque stays empty, so
           restart the scan from the nearest lane. *)
        steal_loop 1
      | None -> steal_loop (k + 1)
    end
  in
  own_loop ();
  pool.busy_s.(lane) <- pool.busy_s.(lane) +. (Unix.gettimeofday () -. t0)

let worker_loop pool lane =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while (not pool.stop) && pool.gen = !my_gen do
      Condition.wait pool.work_cv pool.m
    done;
    if pool.stop then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      my_gen := pool.gen;
      match pool.job with
      | None ->
        (* The job this generation announced already completed. *)
        Mutex.unlock pool.m
      | Some job ->
        Mutex.unlock pool.m;
        work pool job lane
    end
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let create ?domains () =
  let lanes =
    match domains with
    | None -> default_domains ()
    | Some d -> max 1 (min d 64)
  in
  let pool =
    {
      lanes;
      workers = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      gen = 0;
      stop = false;
      busy = Atomic.make false;
      jobs = Atomic.make 0;
      tasks = Atomic.make 0;
      steals = Atomic.make 0;
      inline_jobs = Atomic.make 0;
      busy_s = Array.make lanes 0.0;
    }
  in
  pool.workers <-
    Array.init (lanes - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let shutdown pool =
  let workers =
    Mutex.lock pool.m;
    let w = pool.workers in
    if not pool.stop then begin
      pool.stop <- true;
      Condition.broadcast pool.work_cv
    end;
    pool.workers <- [||];
    Mutex.unlock pool.m;
    w
  in
  Array.iter Domain.join workers

let with_pool ?domains f =
  let pool =
    match domains with Some n -> create ~domains:n () | None -> create ()
  in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let default_pool =
  lazy
    (let p = create ~domains:(default_domains ()) () in
     at_exit (fun () -> shutdown p);
     p)

let default () = Lazy.force default_pool

(* ------------------------------------------------------------------ *)
(* Fork-join                                                            *)
(* ------------------------------------------------------------------ *)

(* Default-chunked jobs below this size run inline on the submitter: the
   fixed fan-out cost (condition broadcast, deque setup, join) dwarfs any
   parallel win for tiny loops.  A function of the input size alone —
   never of lanes or load — so the chunk decomposition stays identical at
   every domain count.  Callers that pass an explicit [~chunk] (heavy
   bodies such as per-state LP solves) are unaffected. *)
let sequential_cutoff = 32

let default_chunk n =
  if n <= sequential_cutoff then max 1 n else max 1 ((n + 63) / 64)

let run_parallel pool nchunks csize n body =
  let deques =
    (* Chunk c is dealt to lane (c mod lanes); each deque's items stay in
       increasing chunk order. *)
    Array.init pool.lanes (fun lane ->
        let items =
          Array.init ((nchunks - lane + pool.lanes - 1) / pool.lanes) (fun k ->
              lane + (k * pool.lanes))
        in
        { dm = Mutex.create (); items; lo = 0; hi = Array.length items })
  in
  let job =
    {
      j_csize = csize;
      j_n = n;
      j_body = body;
      j_deques = deques;
      j_remaining = Atomic.make nchunks;
      j_failed = Atomic.make None;
    }
  in
  Mutex.lock pool.m;
  pool.job <- Some job;
  pool.gen <- pool.gen + 1;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  (* The submitter is lane 0. *)
  work pool job 0;
  Mutex.lock pool.m;
  while Atomic.get job.j_remaining > 0 do
    Condition.wait pool.done_cv pool.m
  done;
  pool.job <- None;
  Mutex.unlock pool.m;
  match Atomic.get job.j_failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_for pool ?chunk n body =
  if n > 0 then begin
    let csize =
      match chunk with
      | None -> default_chunk n
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be positive"
    in
    let nchunks = (n + csize - 1) / csize in
    Atomic.incr pool.jobs;
    Atomic.fetch_and_add pool.tasks nchunks |> ignore;
    let inline () =
      Atomic.incr pool.inline_jobs;
      for c = 0 to nchunks - 1 do
        body (c * csize) (min n ((c + 1) * csize))
      done
    in
    if pool.lanes = 1 || nchunks = 1 || pool.stop then inline ()
    else if not (Atomic.compare_and_set pool.busy false true) then
      (* Nested or concurrent submission: serialize on the caller. *)
      inline ()
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set pool.busy false)
        (fun () -> run_parallel pool nchunks csize n body)
  end

let parallel_map pool ?chunk f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ?chunk n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_iter pool ?chunk f xs =
  let n = Array.length xs in
  if n > 0 then
    parallel_for pool ?chunk n (fun lo hi ->
        for i = lo to hi - 1 do
          f xs.(i)
        done)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let stats pool =
  {
    Pool_stats.domains = pool.lanes;
    jobs = Atomic.get pool.jobs;
    tasks = Atomic.get pool.tasks;
    steals = Atomic.get pool.steals;
    inline_jobs = Atomic.get pool.inline_jobs;
    busy_s = Array.copy pool.busy_s;
  }

let reset_stats pool =
  Atomic.set pool.jobs 0;
  Atomic.set pool.tasks 0;
  Atomic.set pool.steals 0;
  Atomic.set pool.inline_jobs 0;
  Array.fill pool.busy_s 0 (Array.length pool.busy_s) 0.0
