open Prete_optics
module Rng = Prete_util.Rng

(* Keep perturbed/tuned probabilities strictly inside (0, 1): the scenario
   enumeration conditions on the truncated space, and an exact 0 or 1
   collapses outcome probabilities. *)
let clamp01 p = Float.max 1e-4 (Float.min 0.9999 p)

(* ------------------------------------------------------------------ *)
(* TE-loss oracle                                                       *)
(* ------------------------------------------------------------------ *)

module Oracle = struct
  type t = {
    env : Prete.Availability.env;
    scale : float;
    pool : Prete_exec.Pool.t option;
    bases : Prete_lp.Simplex.basis option array;
    mutable anchor : Prete_lp.Simplex.basis option array option;
        (* Snapshot of [bases] after the first (cold) evaluation.  Every
           later call warm-starts from this fixed anchor, never from the
           previous call's final bases: degenerate alternate optima mean
           an evolving warm start can drift to a different optimal vertex
           with a different delivered availability, which would make the
           loss depend on call history.  Anchoring keeps it a pure
           function of the probability vector. *)
    mutable calls : int;
  }

  let create ?pool ?(scale = 2.0) env =
    let n_states =
      Array.length (Prete.Availability.Internal.degradation_states env)
    in
    { env; scale; pool; bases = Array.make n_states None; anchor = None; calls = 0 }

  let dim t = Array.length t.env.Prete.Availability.degr_events
  let events t = t.env.Prete.Availability.degr_events
  let calls t = t.calls

  let availability t probs =
    if Array.length probs <> dim t then
      invalid_arg "Dfl.Oracle: probability vector has wrong dimension";
    t.calls <- t.calls + 1;
    (* A probability vector indexed by fiber IS a PreTE predictor: the
       calibration layer only ever consults the predictor on the env's
       representative degradation event of fiber n, whose [fiber] field
       is n.  The anchored per-state bases turn each evaluation into
       warm re-solves of the first one. *)
    let predictor f = clamp01 probs.(f.Hazard.fiber) in
    let scheme = Prete.Schemes.prete_default ~predictor () in
    let solve () =
      Prete.Availability.availability ?pool:t.pool ~bases:t.bases t.env scheme
        ~scale:t.scale
    in
    (match t.anchor with
    | Some a -> Array.blit a 0 t.bases 0 (Array.length a)
    | None ->
      (* First call: cold solve to capture the anchor, then fall through
         to a warm re-solve so that even this call returns the
         warm-from-anchor value — a cold and a warm solve can settle on
         different degenerate optimal vertices with different delivered
         availability, and mixing the two regimes would make the first
         loss incomparable with every later one. *)
      ignore (solve ());
      let a = Array.copy t.bases in
      t.anchor <- Some a);
    solve ()

  let loss t probs = 1.0 -. availability t probs
end

(* ------------------------------------------------------------------ *)
(* Perturbation-gradient estimator                                      *)
(* ------------------------------------------------------------------ *)

module Estimator = struct
  type method_ = Spsa of { pairs : int } | Fd

  let estimate ?(c = 0.05) ~seed ~method_ ~loss probs =
    let n = Array.length probs in
    if n = 0 then invalid_arg "Dfl.Estimator.estimate: empty vector";
    if c <= 0.0 then invalid_arg "Dfl.Estimator.estimate: c must be positive";
    let g = Array.make n 0.0 in
    (match method_ with
    | Fd ->
      (* Coordinate-wise central differences: 2n loss calls, exact for
         quadratics up to rounding.  The probe stays inside [0, 1] and
         divides by the realized (possibly one-sided) width. *)
      let p = Array.copy probs in
      for i = 0 to n - 1 do
        let save = p.(i) in
        let hi = Float.min 1.0 (save +. c) and lo = Float.max 0.0 (save -. c) in
        p.(i) <- hi;
        let lhi = loss p in
        p.(i) <- lo;
        let llo = loss p in
        p.(i) <- save;
        g.(i) <- (lhi -. llo) /. (hi -. lo)
      done
    | Spsa { pairs } ->
      if pairs <= 0 then invalid_arg "Dfl.Estimator.estimate: pairs must be positive";
      (* Simultaneous perturbation: 2 loss calls per pair regardless of
         dimension.  Each pair's Rademacher direction comes from its own
         pre-split substream, so the estimate is a pure function of
         (seed, pairs, probs) — loss evaluations run one at a time and
         parallelize internally (the oracle fans states out on the
         pool), which is what keeps training bit-identical at any
         domain count. *)
      let master = Rng.create seed in
      let streams = Array.init pairs (fun _ -> Rng.split master) in
      let delta = Array.make n 1.0 in
      let hi = Array.make n 0.0 and lo = Array.make n 0.0 in
      Array.iter
        (fun rng ->
          for i = 0 to n - 1 do
            delta.(i) <- (if Rng.bernoulli rng 0.5 then 1.0 else -1.0);
            hi.(i) <- probs.(i) +. (c *. delta.(i));
            lo.(i) <- probs.(i) -. (c *. delta.(i))
          done;
          let d = (loss hi -. loss lo) /. (2.0 *. c) in
          for i = 0 to n - 1 do
            (* 1/delta = delta for Rademacher entries. *)
            g.(i) <- g.(i) +. (d *. delta.(i))
          done)
        streams;
      let inv = 1.0 /. float_of_int pairs in
      for i = 0 to n - 1 do
        g.(i) <- g.(i) *. inv
      done);
    g
end

(* ------------------------------------------------------------------ *)
(* Trainer                                                              *)
(* ------------------------------------------------------------------ *)

module Trainer = struct
  type config = {
    steps : int;
    pairs : int;
    c : float;
    lr : float;
    distill_epochs : int;
    seed : int;
  }

  let default_config =
    { steps = 8; pairs = 4; c = 0.05; lr = 0.15; distill_epochs = 300; seed = 7 }

  type report = {
    initial_loss : float;
    tuned_loss : float;
    distilled_loss : float;
    kept : bool;
    loss_calls : int;
    trace : (int * float) list;
  }

  let tune cfg ~loss q0 =
    if cfg.steps < 0 then invalid_arg "Dfl.Trainer.tune: negative steps";
    let calls = ref 0 in
    let loss p = incr calls; loss p in
    let q = Array.map clamp01 q0 in
    let best = ref (loss q) in
    let trace = ref [ (0, !best) ] in
    (* Greedy descent along the SPSA estimate, step length measured in
       probability units (infinity-norm normalized so a flat or a steep
       loss surface get the same probe distance); rejected steps halve
       the length.  Every move is validated against the oracle, so the
       tuned vector never regresses below the warm start. *)
    let eta = ref cfg.lr in
    (try
       for step = 1 to cfg.steps do
         let g =
           Estimator.estimate ~c:cfg.c
             ~seed:(cfg.seed + (step * 7919))
             ~method_:(Estimator.Spsa { pairs = cfg.pairs })
             ~loss q
         in
         let gmax = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 g in
         if gmax <= 1e-15 then raise Exit;
         let cand = Array.mapi (fun i qi -> clamp01 (qi -. (!eta *. g.(i) /. gmax))) q in
         let cl = loss cand in
         if cl < !best -. 1e-12 then begin
           Array.blit cand 0 q 0 (Array.length q);
           best := cl;
           trace := (step, cl) :: !trace
         end
         else eta := Float.max 1e-3 (!eta /. 2.0)
       done
     with Exit -> ());
    (q, !best, !calls, List.rev !trace)

  let report_of ~initial ~tuned ~distilled ~kept ~calls ~trace =
    {
      initial_loss = initial;
      tuned_loss = tuned;
      distilled_loss = distilled;
      kept;
      loss_calls = calls;
      trace;
    }

  let finetune_mlp ?(config = default_config) ~oracle mlp =
    let events = Oracle.events oracle in
    let loss = Oracle.loss oracle in
    let q0 = Array.map (Mlp.predict_proba mlp) events in
    let initial = loss q0 in
    let qstar, tuned, calls, trace = tune config ~loss q0 in
    let targets = Array.map2 (fun e q -> (e, q)) events qstar in
    let mlp' = Mlp.finetune ~epochs:config.distill_epochs mlp ~targets in
    let distilled = loss (Array.map (Mlp.predict_proba mlp') events) in
    (* The distillation is lossy; keep the decision-focused model only
       when its own realized outputs still beat the warm start. *)
    if distilled < initial -. 1e-12 then
      ( mlp',
        report_of ~initial ~tuned ~distilled ~kept:true ~calls:(calls + 1) ~trace )
    else
      ( mlp,
        report_of ~initial ~tuned ~distilled ~kept:false ~calls:(calls + 1) ~trace )

  let finetune_dtree ?(config = default_config) ~oracle tree =
    let events = Oracle.events oracle in
    let loss = Oracle.loss oracle in
    let q0 = Array.map (Dtree.predict_proba tree) events in
    let initial = loss q0 in
    let qstar, tuned, calls, trace = tune config ~loss q0 in
    let targets = Array.map2 (fun e q -> (e, q)) events qstar in
    let tree' = Dtree.finetune tree ~targets in
    let distilled = loss (Array.map (Dtree.predict_proba tree') events) in
    if distilled < initial -. 1e-12 then
      ( tree',
        report_of ~initial ~tuned ~distilled ~kept:true ~calls:(calls + 1) ~trace )
    else
      ( tree,
        report_of ~initial ~tuned ~distilled ~kept:false ~calls:(calls + 1) ~trace )
end
