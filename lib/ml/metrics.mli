(** Binary-classification metrics (Table 5, Table 8). *)

type confusion = { tp : int; fp : int; tn : int; fn : int }

val confusion : predicted:bool array -> actual:bool array -> confusion
(** Raises [Invalid_argument] on length mismatch. *)

val precision : confusion -> float
(** TP / (TP + FP); 0 when undefined. *)

val recall : confusion -> float
(** TP / (TP + FN); 0 when undefined. *)

val f1 : confusion -> float
val accuracy : confusion -> float

val mean_abs_error : predicted:float array -> actual:float array -> float
(** Mean |p̂ − p*| — the Fig. 14 prediction-error metric. *)

val evaluate :
  predict:(Prete_optics.Hazard.features -> bool) -> Corpus.example array -> confusion
(** Run a labeller over a test set. *)

val auc : scores:float array -> labels:bool array -> float
(** Area under the ROC curve via Mann–Whitney ranks (ties get the
    average rank): the probability a random positive outscores a random
    negative.  0.5 for a single-class label set; raises
    [Invalid_argument] on length mismatch.  Reported next to delivered
    availability in the decision-focused bench, where the whole point is
    that the two can move independently. *)

val auc_examples : scores:float array -> Corpus.example array -> float
(** {!auc} against a test set's labels. *)
