(** The PreTE failure-prediction neural network (§4.1.1, Appendix A.2).

    Architecture: scaled numerics + one-hot time/vendor concatenated with
    trainable fiber-id and region embeddings → 64-unit ReLU hidden layer →
    2-unit linear decoder → softmax over {normal, failure}.  Training:
    Adam (lr 1e-3), L2 regularization 2e-4, negative log-likelihood loss,
    minority oversampling; one model is trained across all fibers
    (one-model-one-fiber is impractical at these data volumes, §4.1.1).

    [ablate] supports the Table 8 feature-ablation study: the named
    feature is replaced by a constant, removing its information content
    while keeping the architecture fixed. *)

type feature =
  | Time
  | Degree
  | Gradient
  | Fluctuation
  | Region
  | Fiber_id
  | Vendor

val feature_name : feature -> string
val all_features : feature list

type config = {
  hidden : int;  (** 64 *)
  embed_fiber : int;  (** 8 *)
  embed_region : int;  (** 2 *)
  learning_rate : float;  (** 1e-3 *)
  l2 : float;  (** 2e-4 *)
  epochs : int;
  batch : int;
  seed : int;
}

val default_config : config
(** Paper hyper-parameters; 30 epochs, batch 32, seed 42. *)

type t

val train : ?config:config -> ?ablate:feature -> Corpus.example array -> t
(** Oversamples internally; raises [Invalid_argument] on an empty or
    single-class training set. *)

val finetune :
  ?epochs:int ->
  ?lr:float ->
  t ->
  targets:(Prete_optics.Hazard.features * float) array ->
  t
(** Distill a set of soft targets into a copy of the model: full-batch
    Adam on cross-entropy against target distributions [(1-q, q)], fresh
    optimizer state, [epochs] passes (default 300), [lr] defaulting to
    the model's configured rate.  The input model is never mutated — the
    decision-focused trainer ({!Dfl.Trainer}) uses this to push
    TE-loss-tuned output vectors back into the network while keeping the
    log-loss warm start around as a fallback.  No RNG is consumed, so
    the result is a pure function of (model, targets, epochs, lr).
    Raises [Invalid_argument] on an empty target set or targets outside
    [0, 1]. *)

val predict_proba : t -> Prete_optics.Hazard.features -> float
(** Failure probability p₁ (softmax output). *)

val predict_label : t -> Prete_optics.Hazard.features -> bool
(** argmax prediction: [true] = failure. *)

val predict_batch : t -> Prete_optics.Hazard.features array -> float array
(** Batched inference — the controller batches concurrent degradations
    (§4.1.1). *)

val average_nll : t -> Corpus.example array -> float
(** Mean negative log-likelihood on a labelled set (training diagnostic). *)
