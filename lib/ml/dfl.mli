(** Decision-focused training (PR 10).

    Log-loss training optimizes a proxy: how well the predictor ranks
    cut events.  What PreTE actually cares about is the realized TE
    objective — delivered flow and stream availability after the
    controller has turned predictions into reservations.  This module
    group closes that loop:

    - {!Oracle} maps a predicted cut-probability vector (one entry per
      fiber, evaluated on the env's representative degradation events)
      to delivered availability via the existing scenario construction
      and warm-started LP solves.  Consecutive evaluations differ only
      in objective-side data, so the per-state simplex bases captured
      by the first evaluation make every later re-solve a cheap warm
      pivot sequence.  The warm start is {e anchored}: each call starts
      from the first evaluation's bases, never the previous call's, so
      the oracle is a pure function of the probability vector (an
      evolving warm start could drift across degenerate alternate
      optima and make losses depend on call history).
    - {!Estimator} estimates the gradient of any loss over the
      predictor's output vector by perturbation: coordinate-wise
      central differences ([Fd], 2·dim calls, exact on quadratics) or
      simultaneous perturbation ([Spsa], 2 calls per pair regardless of
      dimension).  Directions come from pre-split seeded substreams and
      loss evaluations run sequentially (the oracle parallelizes
      internally over degradation states), so estimates are
      bit-identical at any domain count.
    - {!Trainer} fine-tunes an existing model against the oracle:
      greedy SPSA descent in output space starting from the log-loss
      model's own predictions, then distillation of the tuned vector
      back into the model ({!Mlp.finetune} / {!Dtree.finetune}), with a
      final guard that keeps the warm start whenever distillation lost
      the improvement. *)

(** Maps predictor output vectors to realized TE loss. *)
module Oracle : sig
  type t

  val create : ?pool:Prete_exec.Pool.t -> ?scale:float -> Prete.Availability.env -> t
  (** [scale] is the demand multiplier passed to every availability
      evaluation (default 2.0 — the regime where reservations matter).
      The oracle owns an anchored warm-basis cache with one slot per
      degradation state (filled by the first call, reused read-only by
      all later ones); it is safe to share across calls but not across
      threads. *)

  val dim : t -> int
  (** Number of fibers = length of the expected probability vector. *)

  val events : t -> Prete_optics.Hazard.features array
  (** Representative degradation event per fiber — [events t].(i) has
      [fiber = i].  These are the inputs a model is evaluated on to
      produce the probability vector. *)

  val calls : t -> int
  (** Availability evaluations performed so far (cost accounting). *)

  val availability : t -> float array -> float
  (** Delivered availability under a PreTE scheme whose predictor
      returns [probs.(fiber)] (clamped into (0,1)).  A pure function of
      [probs]: every call — including the first, which pays an extra
      cold solve to capture the anchor before re-solving warm —
      returns the warm-from-anchor value, so re-evaluating the same
      vector reproduces the same value bit-for-bit.  Raises
      [Invalid_argument] if the vector length is not [dim t]. *)

  val loss : t -> float array -> float
  (** [1 - availability]. *)
end

(** Perturbation gradients over predictor output vectors. *)
module Estimator : sig
  type method_ =
    | Spsa of { pairs : int }
        (** Rademacher simultaneous perturbation, averaged over
            [pairs] two-sided probes: 2·pairs loss calls. *)
    | Fd  (** Central differences per coordinate: 2·dim loss calls. *)

  val estimate :
    ?c:float ->
    seed:int ->
    method_:method_ ->
    loss:(float array -> float) ->
    float array ->
    float array
  (** Gradient estimate of [loss] at the given point; [c] is the probe
      radius (default 0.05).  [Fd] clamps probes into [0,1] and divides
      by the realized width; [Spsa] probes symmetrically.  Pure
      function of (seed, method_, c, point, loss).  Raises
      [Invalid_argument] on an empty vector, non-positive [c], or
      non-positive pair count. *)
end

(** End-to-end fine-tuning of predictors against the TE-loss oracle. *)
module Trainer : sig
  type config = {
    steps : int;  (** SPSA descent steps (8). *)
    pairs : int;  (** Perturbation pairs per gradient estimate (4). *)
    c : float;  (** Probe radius (0.05). *)
    lr : float;  (** Initial step length, ∞-norm units (0.15). *)
    distill_epochs : int;  (** Distillation epochs (300). *)
    seed : int;  (** Master seed (7). *)
  }

  val default_config : config

  type report = {
    initial_loss : float;  (** Oracle loss of the warm-start outputs. *)
    tuned_loss : float;  (** Best loss reached in output space. *)
    distilled_loss : float;  (** Loss of the distilled model's outputs. *)
    kept : bool;  (** Whether the distilled model replaced the input. *)
    loss_calls : int;  (** Oracle/loss evaluations consumed. *)
    trace : (int * float) list;
        (** (step, loss) at init and each accepted step. *)
  }

  val tune :
    config ->
    loss:(float array -> float) ->
    float array ->
    float array * float * int * (int * float) list
  (** [tune cfg ~loss q0] runs greedy SPSA descent from [q0] and
      returns [(q*, best_loss, loss_calls, trace)].  Every step is
      validated against [loss], so [best_loss <= loss q0]; rejected
      steps halve the step length.  Deterministic given [cfg]. *)

  val finetune_mlp :
    ?config:config -> oracle:Oracle.t -> Mlp.t -> Mlp.t * report
  (** Tune the MLP's outputs on the oracle events, distill the tuned
      vector back via {!Mlp.finetune}, and return the distilled model
      only if its realized loss still beats the warm start ([kept]);
      otherwise the input model is returned unchanged. *)

  val finetune_dtree :
    ?config:config -> oracle:Oracle.t -> Dtree.t -> Dtree.t * report
  (** Same, adjusting {!Dtree} leaf values via {!Dtree.finetune}. *)
end
