type confusion = { tp : int; fp : int; tn : int; fn : int }

let confusion ~predicted ~actual =
  if Array.length predicted <> Array.length actual then
    invalid_arg "Metrics.confusion: length mismatch";
  let c = ref { tp = 0; fp = 0; tn = 0; fn = 0 } in
  Array.iteri
    (fun i p ->
      let a = actual.(i) in
      c :=
        (match (p, a) with
        | true, true -> { !c with tp = !c.tp + 1 }
        | true, false -> { !c with fp = !c.fp + 1 }
        | false, false -> { !c with tn = !c.tn + 1 }
        | false, true -> { !c with fn = !c.fn + 1 }))
    predicted;
  !c

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let precision c = ratio c.tp (c.tp + c.fp)
let recall c = ratio c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let accuracy c = ratio (c.tp + c.tn) (c.tp + c.fp + c.tn + c.fn)

let mean_abs_error ~predicted ~actual =
  if Array.length predicted <> Array.length actual then
    invalid_arg "Metrics.mean_abs_error: length mismatch";
  if Array.length predicted = 0 then invalid_arg "Metrics.mean_abs_error: empty";
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. actual.(i))) predicted;
  !acc /. float_of_int (Array.length predicted)

let evaluate ~predict examples =
  let predicted = Array.map (fun (e : Corpus.example) -> predict e.Corpus.features) examples in
  let actual = Array.map (fun (e : Corpus.example) -> e.Corpus.label) examples in
  confusion ~predicted ~actual

let auc ~scores ~labels =
  if Array.length scores <> Array.length labels then
    invalid_arg "Metrics.auc: length mismatch";
  let n = Array.length scores in
  let np = Array.fold_left (fun a l -> if l then a + 1 else a) 0 labels in
  let nn = n - np in
  if np = 0 || nn = 0 then 0.5
  else begin
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let c = compare scores.(i) scores.(j) in
        if c <> 0 then c else compare i j)
      order;
    (* Average rank over each tie group, so equal scores contribute 1/2
       per positive-negative pair (the Mann–Whitney convention). *)
    let rank_sum_pos = ref 0.0 in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j + 1 < n && scores.(order.(!j + 1)) = scores.(order.(!i)) do
        incr j
      done;
      (* Ranks are 1-based; the group spans ranks !i+1 .. !j+1. *)
      let avg = float_of_int (!i + 1 + !j + 1) /. 2.0 in
      for k = !i to !j do
        if labels.(order.(k)) then rank_sum_pos := !rank_sum_pos +. avg
      done;
      i := !j + 1
    done;
    let np_f = float_of_int np and nn_f = float_of_int nn in
    (!rank_sum_pos -. (np_f *. (np_f +. 1.0) /. 2.0)) /. (np_f *. nn_f)
  end

let auc_examples ~scores examples =
  auc ~scores ~labels:(Array.map (fun (e : Corpus.example) -> e.Corpus.label) examples)
