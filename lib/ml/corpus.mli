(** Learning corpus: degradation events as labelled examples.

    Bridges the optical event log to the predictors.  Follows Appendix A.2:
    the first 80% of {e each fiber's} degradation events (chronologically)
    train, the remaining 20% test. *)

type example = {
  features : Prete_optics.Hazard.features;
  label : bool;  (** Did the degradation lead to a cut? *)
  true_hazard : float;  (** Ground-truth probability (for Fig. 14). *)
}

type t = { train : example array; test : example array }

val of_dataset : Prete_optics.Dataset.t -> t
(** Per-fiber 80/20 chronological split. *)

val oversample : seed:int -> example array -> example array
(** Duplicate minority-class examples until the classes balance, then
    shuffle (the paper's oversampling for the 4:6 imbalance).  The seed
    is required so every caller states its stream explicitly — the
    decision-focused trainer needs the whole pipeline deterministic
    end-to-end; same seed and input give a bit-identical corpus. *)

val positives : example array -> int
val class_balance : example array -> float
(** Fraction of positive examples. *)
