open Prete_util

type example = {
  features : Prete_optics.Hazard.features;
  label : bool;
  true_hazard : float;
}

type t = { train : example array; test : example array }

let of_dataset (ds : Prete_optics.Dataset.t) =
  let nf = Prete_net.Topology.num_fibers ds.Prete_optics.Dataset.topo in
  let per_fiber = Array.make nf [] in
  (* Degradations are chronological; collect per fiber preserving order. *)
  Array.iter
    (fun (d : Prete_optics.Dataset.degradation) ->
      let ex =
        {
          features = d.Prete_optics.Dataset.features;
          label = d.Prete_optics.Dataset.led_to_cut;
          true_hazard = d.Prete_optics.Dataset.true_hazard;
        }
      in
      per_fiber.(d.Prete_optics.Dataset.d_fiber) <-
        ex :: per_fiber.(d.Prete_optics.Dataset.d_fiber))
    ds.Prete_optics.Dataset.degradations;
  let train = ref [] and test = ref [] in
  Array.iter
    (fun events ->
      let events = Array.of_list (List.rev events) in
      let n = Array.length events in
      let cut = n * 8 / 10 in
      for i = 0 to n - 1 do
        if i < cut then train := events.(i) :: !train else test := events.(i) :: !test
      done)
    per_fiber;
  { train = Array.of_list (List.rev !train); test = Array.of_list (List.rev !test) }

let positives xs =
  Array.fold_left (fun acc e -> if e.label then acc + 1 else acc) 0 xs

let class_balance xs =
  if Array.length xs = 0 then 0.0
  else float_of_int (positives xs) /. float_of_int (Array.length xs)

let oversample ~seed xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let pos = Array.of_list (List.filter (fun e -> e.label) (Array.to_list xs)) in
    let neg = Array.of_list (List.filter (fun e -> not e.label) (Array.to_list xs)) in
    let np = Array.length pos and nn = Array.length neg in
    if np = 0 || nn = 0 then Array.copy xs
    else begin
      let rng = Rng.create seed in
      let minority, majority = if np < nn then (pos, neg) else (neg, pos) in
      let deficit = Array.length majority - Array.length minority in
      let extra = Array.init deficit (fun _ -> Rng.choice rng minority) in
      let out = Array.concat [ majority; minority; extra ] in
      Rng.shuffle rng out;
      out
    end
  end
