open Prete_optics

type config = { max_depth : int; min_samples_leaf : int; max_thresholds : int }

let default_config = { max_depth = 8; min_samples_leaf = 5; max_thresholds = 32 }

type node =
  | Leaf of float  (* positive fraction *)
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = node

let num_features = 9

let vector (f : Hazard.features) =
  [|
    f.Hazard.degree;
    f.Hazard.gradient;
    float_of_int f.Hazard.fluctuation;
    f.Hazard.length_km;
    f.Hazard.duration_s;
    f.Hazard.time_of_day;
    float_of_int f.Hazard.fiber;
    float_of_int f.Hazard.region;
    float_of_int f.Hazard.vendor;
  |]

let positive_fraction rows =
  let n = Array.length rows in
  if n = 0 then 0.0
  else
    float_of_int (Array.fold_left (fun a (_, l) -> if l then a + 1 else a) 0 rows)
    /. float_of_int n

(* Gini impurity of a (count, positives) split side. *)
let gini n pos =
  if n = 0 then 0.0
  else
    let p = float_of_int pos /. float_of_int n in
    2.0 *. p *. (1.0 -. p)

let train ?(config = default_config) examples =
  if Array.length examples = 0 then invalid_arg "Dtree.train: empty training set";
  let rows =
    Array.map (fun (e : Corpus.example) -> (vector e.Corpus.features, e.Corpus.label)) examples
  in
  let rec grow rows depth =
    let n = Array.length rows in
    let pf = positive_fraction rows in
    if depth >= config.max_depth || n < 2 * config.min_samples_leaf || pf = 0.0 || pf = 1.0
    then Leaf pf
    else begin
      (* Best split across features and candidate thresholds. *)
      let best = ref None in
      for f = 0 to num_features - 1 do
        let values = Array.map (fun (v, _) -> v.(f)) rows in
        let sorted = Array.copy values in
        Array.sort compare sorted;
        let candidates =
          let k = min config.max_thresholds (n - 1) in
          List.sort_uniq compare
            (List.init k (fun i ->
                 let idx = (i + 1) * n / (k + 1) in
                 let idx = max 1 (min (n - 1) idx) in
                 0.5 *. (sorted.(idx - 1) +. sorted.(idx))))
        in
        List.iter
          (fun thr ->
            let ln = ref 0 and lp = ref 0 and rn = ref 0 and rp = ref 0 in
            Array.iter
              (fun (v, l) ->
                if v.(f) <= thr then begin
                  incr ln;
                  if l then incr lp
                end
                else begin
                  incr rn;
                  if l then incr rp
                end)
              rows;
            if !ln >= config.min_samples_leaf && !rn >= config.min_samples_leaf then begin
              let score =
                (float_of_int !ln *. gini !ln !lp +. (float_of_int !rn *. gini !rn !rp))
                /. float_of_int n
              in
              match !best with
              | Some (s, _, _) when s <= score -> ()
              | _ -> best := Some (score, f, thr)
            end)
          candidates
      done;
      match !best with
      | None -> Leaf pf
      | Some (score, f, thr) ->
        let parent = gini n (int_of_float (pf *. float_of_int n +. 0.5)) in
        if score >= parent -. 1e-9 then Leaf pf
        else begin
          let left = Array.of_list (List.filter (fun (v, _) -> v.(f) <= thr) (Array.to_list rows)) in
          let right = Array.of_list (List.filter (fun (v, _) -> v.(f) > thr) (Array.to_list rows)) in
          Split
            {
              feature = f;
              threshold = thr;
              left = grow left (depth + 1);
              right = grow right (depth + 1);
            }
        end
    end
  in
  grow rows 0

let rec predict_node node v =
  match node with
  | Leaf p -> p
  | Split { feature; threshold; left; right } ->
    if v.(feature) <= threshold then predict_node left v else predict_node right v

let predict_proba t f = predict_node t (vector f)

let predict_label t f = predict_proba t f >= 0.5

let rec depth = function
  | Leaf _ -> 0
  | Split { left; right; _ } -> 1 + max (depth left) (depth right)

let rec num_leaves = function
  | Leaf _ -> 1
  | Split { left; right; _ } -> num_leaves left + num_leaves right

let finetune t ~targets =
  if Array.length targets = 0 then invalid_arg "Dtree.finetune: empty target set";
  Array.iter
    (fun (_, q) ->
      if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
        invalid_arg "Dtree.finetune: target outside [0, 1]")
    targets;
  let rows = Array.map (fun (f, q) -> (vector f, q)) targets in
  (* Re-target each leaf to the mean of the tuned probabilities routed to
     it; leaves no target reaches keep their trained positive fraction. *)
  let rec retarget node rows =
    match node with
    | Leaf pf ->
      if Array.length rows = 0 then Leaf pf
      else
        Leaf
          (Array.fold_left (fun a (_, q) -> a +. q) 0.0 rows
          /. float_of_int (Array.length rows))
    | Split { feature; threshold; left; right } ->
      let l = Array.of_list (List.filter (fun (v, _) -> v.(feature) <= threshold) (Array.to_list rows)) in
      let r = Array.of_list (List.filter (fun (v, _) -> v.(feature) > threshold) (Array.to_list rows)) in
      Split { feature; threshold; left = retarget left l; right = retarget right r }
  in
  retarget t rows
