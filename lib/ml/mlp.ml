open Prete_util
open Prete_optics

type feature = Time | Degree | Gradient | Fluctuation | Region | Fiber_id | Vendor

let feature_name = function
  | Time -> "time"
  | Degree -> "degree"
  | Gradient -> "gradient"
  | Fluctuation -> "fluctuation"
  | Region -> "region"
  | Fiber_id -> "fiber ID"
  | Vendor -> "vendor"

let all_features = [ Time; Degree; Gradient; Fluctuation; Region; Fiber_id; Vendor ]

type config = {
  hidden : int;
  embed_fiber : int;
  embed_region : int;
  learning_rate : float;
  l2 : float;
  epochs : int;
  batch : int;
  seed : int;
}

let default_config =
  {
    hidden = 64;
    embed_fiber = 8;
    embed_region = 2;
    learning_rate = 1e-3;
    l2 = 2e-4;
    epochs = 30;
    batch = 32;
    seed = 42;
  }

(* Replace the ablated feature with a constant: same architecture, no
   information content (Table 8). *)
let neutralize ablate (f : Hazard.features) =
  match ablate with
  | None -> f
  | Some Time -> { f with Hazard.time_of_day = 12.0 }
  | Some Degree -> { f with Hazard.degree = 6.5 }
  | Some Gradient -> { f with Hazard.gradient = 0.1 }
  | Some Fluctuation -> { f with Hazard.fluctuation = 5 }
  | Some Region -> { f with Hazard.region = 0 }
  | Some Fiber_id -> { f with Hazard.fiber = 0 }
  | Some Vendor -> { f with Hazard.vendor = 0 }

(* ------------------------------------------------------------------ *)
(* Parameters and Adam state                                            *)
(* ------------------------------------------------------------------ *)

type mat = float array array

type params = {
  w1 : mat;  (* hidden x d_in *)
  b1 : float array;
  w2 : mat;  (* 2 x hidden *)
  b2 : float array;
  ef : mat;  (* n_fibers x embed_fiber *)
  er : mat;  (* n_regions x embed_region *)
}

type t = {
  config : config;
  encoder : Encoder.t;
  ablate : feature option;
  p : params;
}

let zeros_like (m : mat) = Array.map (fun r -> Array.make (Array.length r) 0.0) m

let mat_init rng rows cols scale =
  Array.init rows (fun _ -> Array.init cols (fun _ -> Rng.uniform rng (-.scale) scale))

(* One Adam state per parameter matrix (vectors are 1-row matrices). *)
type adam = { mutable t : int; m : mat; v : mat }

let adam_of (p : mat) = { t = 0; m = zeros_like p; v = zeros_like p }

let adam_step ~lr st (p : mat) (g : mat) =
  st.t <- st.t + 1;
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  let bc1 = 1.0 -. (beta1 ** float_of_int st.t) in
  let bc2 = 1.0 -. (beta2 ** float_of_int st.t) in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j gij ->
          st.m.(i).(j) <- (beta1 *. st.m.(i).(j)) +. ((1.0 -. beta1) *. gij);
          st.v.(i).(j) <- (beta2 *. st.v.(i).(j)) +. ((1.0 -. beta2) *. gij *. gij);
          let mhat = st.m.(i).(j) /. bc1 and vhat = st.v.(i).(j) /. bc2 in
          row.(j) <- row.(j) -. (lr *. mhat /. (sqrt vhat +. eps)))
        g.(i))
    p

(* ------------------------------------------------------------------ *)
(* Forward / backward                                                   *)
(* ------------------------------------------------------------------ *)

let build_input t (e : Encoder.encoded) =
  let dw = Array.length e.Encoder.dense in
  let x = Array.make (dw + t.config.embed_fiber + t.config.embed_region) 0.0 in
  Array.blit e.Encoder.dense 0 x 0 dw;
  Array.blit t.p.ef.(e.Encoder.fiber) 0 x dw t.config.embed_fiber;
  Array.blit t.p.er.(e.Encoder.region) 0 x (dw + t.config.embed_fiber) t.config.embed_region;
  x

let forward t x =
  let hidden = t.config.hidden in
  let z1 = Array.make hidden 0.0 in
  for i = 0 to hidden - 1 do
    let w = t.p.w1.(i) in
    let acc = ref t.p.b1.(i) in
    for j = 0 to Array.length x - 1 do
      acc := !acc +. (w.(j) *. x.(j))
    done;
    z1.(i) <- !acc
  done;
  let h = Array.map (fun z -> if z > 0.0 then z else 0.0) z1 in
  let logits =
    Array.init 2 (fun k ->
        let w = t.p.w2.(k) in
        let acc = ref t.p.b2.(k) in
        for i = 0 to hidden - 1 do
          acc := !acc +. (w.(i) *. h.(i))
        done;
        !acc)
  in
  (z1, h, Matrix.Vec.softmax logits)

let proba t (f : Hazard.features) =
  let f = neutralize t.ablate f in
  let e = Encoder.encode t.encoder f in
  let x = build_input t e in
  let _, _, p = forward t x in
  p.(1)

(* ------------------------------------------------------------------ *)
(* Training                                                             *)
(* ------------------------------------------------------------------ *)

type grads = {
  gw1 : mat;
  gb1 : mat;
  gw2 : mat;
  gb2 : mat;
  gef : mat;
  ger : mat;
}

let copy_params p =
  {
    w1 = Array.map Array.copy p.w1;
    b1 = Array.copy p.b1;
    w2 = Array.map Array.copy p.w2;
    b2 = Array.copy p.b2;
    ef = Array.map Array.copy p.ef;
    er = Array.map Array.copy p.er;
  }

let make_grads config p =
  {
    gw1 = zeros_like p.w1;
    gb1 = [| Array.make config.hidden 0.0 |];
    gw2 = zeros_like p.w2;
    gb2 = [| Array.make 2 0.0 |];
    gef = zeros_like p.ef;
    ger = zeros_like p.er;
  }

let zero_grads g =
  let z (m : mat) = Array.iter (fun r -> Array.fill r 0 (Array.length r) 0.0) m in
  z g.gw1; z g.gb1; z g.gw2; z g.gb2; z g.gef; z g.ger

(* Accumulate one example's gradient.  [target] is a distribution over
   the two classes — one-hot for log-loss training, soft for the
   decision-focused distillation pass — and dL/dlogits = p - target for
   cross-entropy against either. *)
let accumulate_example t g (feats : Hazard.features) ~(target : float array) =
  let config = t.config in
  let f = neutralize t.ablate feats in
  let e = Encoder.encode t.encoder f in
  let dw = Encoder.dense_width t.encoder in
  let x = build_input t e in
  let z1, h, probs = forward t x in
  let dy = Array.mapi (fun k pk -> pk -. target.(k)) probs in
  (* Output layer. *)
  for k = 0 to 1 do
    let gw = g.gw2.(k) in
    for i = 0 to config.hidden - 1 do
      gw.(i) <- gw.(i) +. (dy.(k) *. h.(i))
    done;
    g.gb2.(0).(k) <- g.gb2.(0).(k) +. dy.(k)
  done;
  (* Hidden layer. *)
  let dh = Array.make config.hidden 0.0 in
  for i = 0 to config.hidden - 1 do
    dh.(i) <- (t.p.w2.(0).(i) *. dy.(0)) +. (t.p.w2.(1).(i) *. dy.(1));
    if z1.(i) <= 0.0 then dh.(i) <- 0.0
  done;
  let dx = Array.make (Array.length x) 0.0 in
  for i = 0 to config.hidden - 1 do
    if dh.(i) <> 0.0 then begin
      let gw = g.gw1.(i) and w = t.p.w1.(i) in
      for j = 0 to Array.length x - 1 do
        gw.(j) <- gw.(j) +. (dh.(i) *. x.(j));
        dx.(j) <- dx.(j) +. (dh.(i) *. w.(j))
      done;
      g.gb1.(0).(i) <- g.gb1.(0).(i) +. dh.(i)
    end
  done;
  (* Embedding gradients. *)
  let gef = g.gef.(e.Encoder.fiber) in
  for j = 0 to config.embed_fiber - 1 do
    gef.(j) <- gef.(j) +. dx.(dw + j)
  done;
  let ger = g.ger.(e.Encoder.region) in
  for j = 0 to config.embed_region - 1 do
    ger.(j) <- ger.(j) +. dx.(dw + config.embed_fiber + j)
  done

type adam_set = { aw1 : adam; ab1 : adam; aw2 : adam; ab2 : adam; aef : adam; aer : adam }

let adams_of p =
  {
    aw1 = adam_of p.w1;
    ab1 = adam_of [| p.b1 |];
    aw2 = adam_of p.w2;
    ab2 = adam_of [| p.b2 |];
    aef = adam_of p.ef;
    aer = adam_of p.er;
  }

let apply_batch t g a ~lr ~batch_size =
  let config = t.config in
  let p = t.p in
  let inv = 1.0 /. float_of_int batch_size in
  let finish (gm : mat) (pm : mat) =
    Array.iteri
      (fun i row ->
        Array.iteri (fun j v -> row.(j) <- (v *. inv) +. (config.l2 *. pm.(i).(j))) row)
      gm
  in
  finish g.gw1 p.w1;
  finish g.gb1 [| p.b1 |];
  finish g.gw2 p.w2;
  finish g.gb2 [| p.b2 |];
  finish g.gef p.ef;
  finish g.ger p.er;
  adam_step ~lr a.aw1 p.w1 g.gw1;
  adam_step ~lr a.ab1 [| p.b1 |] g.gb1;
  adam_step ~lr a.aw2 p.w2 g.gw2;
  adam_step ~lr a.ab2 [| p.b2 |] g.gb2;
  adam_step ~lr a.aef p.ef g.gef;
  adam_step ~lr a.aer p.er g.ger

let train ?(config = default_config) ?ablate examples =
  if Array.length examples = 0 then invalid_arg "Mlp.train: empty training set";
  let pos = Corpus.positives examples in
  if pos = 0 || pos = Array.length examples then
    invalid_arg "Mlp.train: single-class training set";
  let data = Corpus.oversample ~seed:(config.seed + 1) examples in
  let encoder = Encoder.fit data in
  let dw = Encoder.dense_width encoder in
  let d_in = dw + config.embed_fiber + config.embed_region in
  let rng = Rng.create config.seed in
  let scale = 1.0 /. sqrt (float_of_int d_in) in
  let p =
    {
      w1 = mat_init rng config.hidden d_in scale;
      b1 = Array.make config.hidden 0.0;
      w2 = mat_init rng 2 config.hidden (1.0 /. sqrt (float_of_int config.hidden));
      b2 = Array.make 2 0.0;
      ef = mat_init rng (Encoder.num_fibers encoder) config.embed_fiber 0.1;
      er = mat_init rng (Encoder.num_regions encoder) config.embed_region 0.1;
    }
  in
  let t = { config; encoder; ablate; p } in
  let g = make_grads config p in
  let a = adams_of p in
  let one_hot = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let n = Array.length data in
  let order = Array.init n (fun i -> i) in
  for _epoch = 1 to config.epochs do
    Rng.shuffle rng order;
    let i = ref 0 in
    while !i < n do
      let batch_size = min config.batch (n - !i) in
      zero_grads g;
      for k = !i to !i + batch_size - 1 do
        let e = data.(order.(k)) in
        accumulate_example t g e.Corpus.features
          ~target:one_hot.(if e.Corpus.label then 1 else 0)
      done;
      apply_batch t g a ~lr:config.learning_rate ~batch_size;
      i := !i + batch_size
    done
  done;
  t

let finetune ?(epochs = 300) ?lr t ~targets =
  if Array.length targets = 0 then invalid_arg "Mlp.finetune: empty target set";
  Array.iter
    (fun (_, q) ->
      if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
        invalid_arg "Mlp.finetune: target outside [0, 1]")
    targets;
  let lr = match lr with Some l -> l | None -> t.config.learning_rate in
  (* Deep-copy: train/finetune update parameter matrices in place, and
     the warm-start model must survive as the fallback the trainer can
     return when the distilled model does not beat it. *)
  let t = { t with p = copy_params t.p } in
  let g = make_grads t.config t.p in
  let a = adams_of t.p in
  (* Full-batch descent on soft-label cross-entropy: the target sets are
     one event per fiber, far smaller than a training corpus, and
     full batches keep the pass free of shuffling state entirely. *)
  let n = Array.length targets in
  for _epoch = 1 to epochs do
    zero_grads g;
    Array.iter
      (fun (feats, q) -> accumulate_example t g feats ~target:[| 1.0 -. q; q |])
      targets;
    apply_batch t g a ~lr ~batch_size:n
  done;
  t

let predict_proba t f = proba t f

let predict_label t f = proba t f >= 0.5

let predict_batch t fs = Array.map (fun f -> proba t f) fs

let average_nll t examples =
  if Array.length examples = 0 then invalid_arg "Mlp.average_nll: empty set";
  let total =
    Array.fold_left
      (fun acc e ->
        let p1 = proba t e.Corpus.features in
        let p = if e.Corpus.label then p1 else 1.0 -. p1 in
        acc -. log (Float.max 1e-12 p))
      0.0 examples
  in
  total /. float_of_int (Array.length examples)
