(** CART decision tree baseline (Table 5's "DT").

    Binary tree with axis-aligned threshold splits chosen by Gini impurity
    over the numeric encoding of all degradation features (including fiber
    id as an ordinal, which is how off-the-shelf tree packages treat it).
    Leaves store the training positive fraction, so the tree also yields a
    probability for Fig. 14-style error comparisons. *)

type t

type config = {
  max_depth : int;  (** Default 8. *)
  min_samples_leaf : int;  (** Default 5. *)
  max_thresholds : int;  (** Candidate split thresholds per feature (32). *)
}

val default_config : config

val train : ?config:config -> Corpus.example array -> t
(** Raises [Invalid_argument] on an empty training set. *)

val predict_proba : t -> Prete_optics.Hazard.features -> float
val predict_label : t -> Prete_optics.Hazard.features -> bool

val depth : t -> int
val num_leaves : t -> int

val finetune : t -> targets:(Prete_optics.Hazard.features * float) array -> t
(** Decision-focused leaf re-targeting: each leaf's stored probability is
    replaced by the mean of the tuned target probabilities whose features
    route to it; untouched leaves keep their trained value.  The tree
    structure (splits) never changes, the input tree is not mutated, and
    the result is a pure function of (tree, targets).  Raises
    [Invalid_argument] on an empty target set or targets outside
    [0, 1]. *)
