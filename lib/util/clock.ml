(* High-water-marked gettimeofday: non-decreasing within a domain.

   The mark is domain-local (Domain.DLS): each domain monotonicizes its
   own view without cross-domain synchronization.  Deadlines still work
   across domains — gettimeofday is a global clock; the mark only guards
   against it stepping backwards (e.g. NTP) mid-measurement. *)

let high_water = Domain.DLS.new_key (fun () -> ref neg_infinity)

let now () =
  let hw = Domain.DLS.get high_water in
  let t = Unix.gettimeofday () in
  if t > !hw then hw := t;
  !hw

let elapsed_since t0 = Float.max 0.0 (now () -. t0)

let deadline_after budget_s = now () +. budget_s

let expired = function None -> false | Some d -> now () > d
