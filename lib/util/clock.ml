(* High-water-marked gettimeofday: non-decreasing within the process. *)

let high_water = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !high_water then high_water := t;
  !high_water

let elapsed_since t0 = Float.max 0.0 (now () -. t0)

let deadline_after budget_s = now () +. budget_s

let expired = function None -> false | Some d -> now () > d
