(** Monotonicized wall clock for durations and deadlines.

    [Unix.gettimeofday] can step backwards under NTP corrections, which
    turns stage durations negative and makes deadline arithmetic lie
    exactly when the control loop is under pressure.  This module wraps it
    with a high-water mark so {!now} is non-decreasing within a domain
    (the mark is domain-local state, so concurrent domains never contend
    or race on it): a backwards step freezes the clock until real time
    catches up, which biases durations towards zero instead of below it.

    All deadline-bounded solving ({!Prete_lp.Simplex.solve},
    {!Prete_lp.Mip.solve}, the [Te] strategies) and the controller's stage
    timing read this clock, never [Unix.gettimeofday] directly. *)

val now : unit -> float
(** Seconds since the epoch, guaranteed non-decreasing across calls made
    by the same domain. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [max 0 (now () - t0)]. *)

val deadline_after : float -> float
(** [deadline_after budget_s] is an absolute deadline [now () + budget_s]
    suitable for the [?deadline] parameters of the solver stack. *)

val expired : float option -> bool
(** [expired deadline] is [true] when a deadline is set and has passed. *)
