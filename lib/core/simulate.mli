(** Monte-Carlo epoch simulator.

    Samples a sequence of TE epochs from the generative optical model —
    per epoch: which fibers degrade, which degradations become cuts (via
    the ground-truth hazard of freshly sampled event features), which
    fibers cut without warning — and plays a TE scheme against the drawn
    sample path, including epochs with {e multiple} simultaneous cuts that
    the analytic evaluator truncates away.

    Used to cross-validate {!Availability.availability}: on schemes with
    instantaneous reaction the two agree within Monte-Carlo noise (see the
    integration tests), and the simulator additionally quantifies the
    truncation error of the analytic single-cut scenario space. *)

type result = {
  availability : float;  (** Demand-weighted mean delivered fraction. *)
  epochs : int;
  degradation_epochs : int;  (** Epochs with at least one degradation. *)
  cut_epochs : int;  (** Epochs with at least one cut. *)
  multi_cut_epochs : int;  (** Epochs the analytic evaluator truncates. *)
}

val run :
  ?seed:int ->
  ?epochs:int ->
  ?pool:Prete_exec.Pool.t ->
  Availability.env ->
  Schemes.t ->
  scale:float ->
  result
(** [run env scheme ~scale] simulates [epochs] (default 20_000) TE periods.
    Plans are cached per degradation state, so the cost is one plan per
    distinct degrading fiber plus O(epochs) bookkeeping.

    Epochs are sampled and evaluated on [pool] (default
    {!Prete_exec.Pool.default}).  Each epoch draws from a private RNG
    substream split from [seed] by epoch index, and partial sums fold in
    a schedule-independent chunk order, so the result is bit-identical at
    any domain count (and to a sequential run).

    Reaction windows: proactive schemes (ECMP, FFC, TeaVar, PreTE, Oracle)
    adapt instantly; ARROW charges its restoration window and Flexile its
    convergence window per cut epoch, as in the analytic evaluator.
    Raises [Invalid_argument] for non-positive [epochs]. *)

val run_model :
  ?seed:int ->
  ?epochs:int ->
  ?pool:Prete_exec.Pool.t ->
  Availability.env ->
  Prete_net.Traffic_model.t ->
  Schemes.t ->
  scale:float ->
  result
(** [run_model env tm scheme ~scale] is {!run} with an epoch-varying
    traffic model: the ground truth is drawn exactly as {!run} draws it
    from [seed], but each epoch is evaluated against the demand class
    selected by [tm]'s schedule (plans per distinct
    class × degradation state, served LPs per distinct class × cut set,
    each epoch normalized by its class's total demand).  [env] must be
    built over the model ([Availability.make_env
    ~traffic:(Traffic_model.to_traffic tm) ~tunnels:...]) so flows line
    up — raises [Invalid_argument] otherwise.  Bit-identical at any
    domain count, like {!run}. *)

(** {1 Chaos harness}

    The fault-injection twin of {!run}: the same generative epoch loop,
    but the controller's {e observations} pass through a {!Faults}
    injector and every plan is produced by the {!Resilience} fallback
    ladder driven through {!Controller.run} — no epoch may raise, and
    every epoch's plan has passed {!Prete_lp.Simplex.feasible}. *)

type chaos_result = {
  c_availability : float;  (** Demand-weighted mean delivered fraction. *)
  c_epochs : int;
  c_detour : int;
      (** Epochs served by the Detour rung (precomputed patch, no solve);
          0 unless [run_chaos ~detours] armed the tier. *)
  c_primary : int;  (** Epochs served by a fresh primary solve. *)
  c_cached : int;  (** Epochs served by the last-good cache. *)
  c_equal_split : int;  (** Epochs on the last-resort equal split. *)
  c_gap_epochs : int;  (** Epochs with a telemetry gap. *)
  c_fault_epochs : int;  (** Epochs where at least one fault fired. *)
  c_degraded_plans : int;
      (** Epochs whose plan was a fallback or an anytime incumbent. *)
  c_causes : (string * int) list;
      (** Fallback root causes by {!Resilience.cause_name}, sorted. *)
  c_cache_hits : int;
      (** Epochs answered from the structural plan cache (solve skipped). *)
  c_cache_misses : int;  (** Cacheable epochs that had to solve. *)
}

val run_chaos :
  ?seed:int ->
  ?epochs:int ->
  ?faults:Faults.spec list ->
  ?fault_seed:int ->
  ?pressure_budget_s:float ->
  ?detours:Prete_net.Detours.t ->
  ?pool:Prete_exec.Pool.t ->
  Availability.env ->
  Schemes.t ->
  scale:float ->
  chaos_result
(** [run_chaos env scheme ~scale] simulates [epochs] (default 400) TE
    periods under the given fault specs (default none).  [detours] arms
    the ladder's Detour rung: every epoch whose observation sees a
    degrading fiber is answered by splicing that fiber's precomputed
    detours into the standing plan instead of re-solving — the
    detour-tier-vs-ladder ablation ([c_detour] counts those epochs).
    The epoch
    sample path is drawn exactly as {!run} draws it from [seed], and the
    injector draws one private substream per epoch from [fault_seed], so
    results across fault settings share the identical ground truth.

    The control loop runs over fixed 50-epoch shards on [pool] (default
    {!Prete_exec.Pool.default}); each shard owns a private fallback
    ladder and structural plan cache, so ladder outcomes are cached per
    observed degradation state (clean observations only) within a shard
    and results are bit-identical at any domain count.
    Raises [Invalid_argument] for non-positive [epochs]. *)

type sweep_entry = {
  sw_class : Faults.class_;
  sw_result : chaos_result;
  sw_delta : float;  (** Availability vs the fault-free baseline. *)
}

(** Internal pieces exposed for the streaming runtime ([prete_rt]), which
    replays the {e same} generative epoch ground truth at 1 Hz telemetry
    granularity and must evaluate its reaction policies with bit-identical
    arithmetic to {!run}. *)
module Internal : sig
  type epoch_sample = {
    es_state : int option;
        (** Planned-for degrading fiber (the first, mirroring the analytic
            truncation); [None] when nothing degrades. *)
    es_cuts : int list;  (** All fibers cut this epoch. *)
    es_degraded : (int * Prete_optics.Hazard.features) list;
        (** Every degrading fiber with its sampled event features, in
            fiber order. *)
  }

  val epoch_streams : seed:int -> epochs:int -> Prete_util.Rng.t array
  (** One private RNG substream per epoch, split sequentially up front —
      an epoch's draws are a function of its index alone. *)

  val sample_epoch : Availability.env -> Prete_util.Rng.t -> epoch_sample
  (** One epoch's ground truth, drawn exactly as {!run} draws it (same
      stream, same draw order). *)

  val eval_epochs :
    ?epoch_plan:(int -> Availability.plan option) ->
    Prete_exec.Pool.t ->
    Availability.env ->
    Schemes.t ->
    demands:float array ->
    state:int option array ->
    epoch_cuts:int list array ->
    float
  (** Availability of a drawn sample path: plan/served tables over the
      distinct states/cut sets, then the chunk-ordered epoch replay —
      the exact phases B and C of {!run}, so calling it on {!run}'s own
      sample path reproduces {!run}'s availability bit-for-bit.
      [epoch_plan] (default: none) may override the plan served to a
      specific epoch — the runtime scores its detour-patched plans this
      way; the default preserves bitwise equality with {!run}.
      Raises [Invalid_argument] on empty or mismatched arrays. *)

  val eval_epochs_classes :
    ?epoch_plan:(int -> Availability.plan option) ->
    Prete_exec.Pool.t ->
    Availability.env ->
    Schemes.t ->
    class_demands:float array array ->
    class_of:(int -> int) ->
    state:int option array ->
    epoch_cuts:int list array ->
    float
  (** {!eval_epochs} generalized to an epoch-varying demand sequence:
      [class_of e] selects the demand class evaluated (and normalized
      against) at epoch [e].  [class_of] must be pure in the epoch
      index; the replay is then bit-identical at any domain count.
      The phases B and C of {!run_model}.  Raises [Invalid_argument]
      on empty/mismatched arrays or an out-of-range class. *)
end

val chaos_sweep :
  ?seed:int ->
  ?epochs:int ->
  ?fault_seed:int ->
  ?pressure_budget_s:float ->
  ?detours:Prete_net.Detours.t ->
  ?pool:Prete_exec.Pool.t ->
  Availability.env ->
  Schemes.t ->
  scale:float ->
  chaos_result * sweep_entry array
(** One fault class at a time at {!Faults.default_rate}, against the
    fault-free baseline — the per-class availability-delta report behind
    [prete_cli chaos]. *)
