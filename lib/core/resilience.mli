(** Fallback ladder for the TE control loop.

    A production controller cannot answer a degradation signal with an
    exception: {e some} routable plan must be installed before the epoch's
    traffic arrives.  This module wraps the plan computation in a ladder
    of increasingly conservative fallbacks:

    + {b Detour} — on a link-failure cause only: precomputed detours
      ({!Prete_net.Detours}) spliced into the {e installed} plan for just
      the affected tunnels, in O(affected-flows) with no solve — the one
      rung whose latency does not depend on the LP (the warm re-solve
      replaces the patch when it lands);
    + {b Primary} — the scheme's own solve (with the anytime deadline
      threaded through, so budget pressure degrades quality rather than
      failing), retried with exponential backoff on transient causes;
    + {b Cached} — the last plan that was accepted, revalidated against
      the {e current} tunnel set with {!Prete_lp.Simplex.feasible};
    + {b Equal_split} — a proportional ECMP-style split scaled per tunnel
      by its bottleneck link, feasible by construction.

    Every rung's product is validated with {!Prete_lp.Simplex.feasible}
    against a capacity-only model before being accepted, so the ladder's
    contract is: the returned plan never oversubscribes a link, and
    {!plan_epoch} never raises on solver failures.

    Backoff is {e charged}, not slept: like the controller's modeled
    hardware stages, retry delay accumulates in the attempt record (and
    from there into {!Controller.note}) instead of stalling the
    simulation. *)

(** Why a rung failed (or why the ladder moved past it). *)
type cause =
  | Solver_timeout  (** Budget expired before any feasible incumbent. *)
  | Solver_numerical of string  (** Internal solver failure. *)
  | Infeasible_beta of string
      (** The TE problem itself is infeasible (e.g. β above the scenario
          mass with normalization off). *)
  | Telemetry_gap
      (** No trustworthy telemetry this epoch; the primary solve was
          skipped rather than fed garbage. *)
  | Plan_rejected
      (** A produced plan failed {!Prete_lp.Simplex.feasible} validation. *)
  | Detour_applied of int
      (** A link-failure cause (the fiber id) was answered by the Detour
          rung: the installed plan was patched rather than re-solved. *)
  | Unexpected of string  (** Any other exception, by [Printexc]. *)

val cause_name : cause -> string

type rung = Detour | Primary | Cached | Equal_split

val rung_name : rung -> string

type attempt = {
  att_rung : rung;
  att_tries : int;  (** Attempts spent on this rung. *)
  att_backoff_s : float;  (** Total charged backoff on this rung. *)
  att_cause : cause option;  (** [None] iff the rung succeeded. *)
}

type outcome = {
  plan : Availability.plan;
  rung : rung;  (** The rung that produced [plan]. *)
  cause : cause option;
      (** Root cause that pushed the ladder off Primary; [None] on a
          clean primary solve. *)
  attempts : attempt list;  (** In ladder order. *)
  backoff_s : float;  (** Total charged backoff across all rungs. *)
}

val degraded : outcome -> bool
(** The plan is in some way worse than a clean primary solve: a fallback
    rung was used, or the primary returned an anytime incumbent
    ([p_degraded]). *)

type t
(** Ladder state: retry policy plus the last-good plan cache.  One value
    per control loop; epochs share it so the Cached rung has something to
    fall back on.  The retained state (last-good plan, rung-0 basis) is
    mutex-guarded, so a ladder may also be shared by epochs evaluated on
    several domains — retention then keeps {e a} recent valid plan/basis
    rather than a schedule-independent one, which is safe because both
    are hints revalidated on every use. *)

val create : ?max_tries:int -> ?base_backoff_s:float -> unit -> t
(** [max_tries] (default 2) attempts on the Primary rung;
    [base_backoff_s] (default 0.1) charged before retry [k] as
    [base *. 2.^(k-1)]. *)

val last_basis : t -> Prete_lp.Simplex.basis option
(** The simplex basis retained from the last accepted primary plan —
    what the ladder hands the next epoch's [primary] as its warm start
    ("rung 0"). *)

val last_good : t -> Availability.plan option
(** The Cached rung's retained plan.  Only validated Primary successes
    ever refresh it — in particular, Detour outcomes never do. *)

val classify : exn -> cause
(** Map solver exceptions into the taxonomy ([Unexpected] otherwise). *)

val capacity_model : Prete_net.Tunnels.t -> Prete_lp.Lp.model
(** Capacity-only LP model: one variable per tunnel (in id order), one
    row per link used by any tunnel.  An allocation vector is routable
    iff it satisfies this model. *)

val plan_feasible : Prete_net.Tunnels.t -> Availability.plan -> bool
(** Validate a plan's allocation against the given tunnel set: the
    allocation must be indexed compatibly and pass
    {!Prete_lp.Simplex.feasible} on {!capacity_model}. *)

val equal_split : Prete_net.Tunnels.t -> demands:float array -> Availability.plan
(** Last-resort plan: each flow's demand split equally over its tunnels,
    then each tunnel scaled by its bottleneck link's load factor.  The
    scaling makes the per-link load at most the capacity, so the result
    passes {!plan_feasible} by construction. *)

val detour_patch :
  detours:Prete_net.Detours.t ->
  installed:Availability.plan ->
  fiber:int ->
  outcome option
(** The Detour rung alone, for callers that react below the controller
    (the streaming runtime's Detector alarm path): splice the
    precomputed detours for [fiber] into [installed]'s allocation with
    {!Prete_net.Detours.splice}, revalidate with {!plan_feasible}
    against the extended tunnel set, and wrap the result as a
    [Detour]-rung outcome with cause [Detour_applied fiber].  [None]
    when the fiber has no detours, nothing could be rerouted, or
    validation failed.  The patched plan is marked [p_degraded], and no
    ladder state exists to touch: detour plans are never cached as
    last-good.  Pure — same inputs, same patch, at any domain count. *)

val plan_epoch :
  t ->
  ts:Prete_net.Tunnels.t ->
  demands:float array ->
  ?telemetry_gap:bool ->
  ?detour:Prete_net.Detours.t * Availability.plan * int ->
  primary:
    (warm:Prete_lp.Simplex.basis option ->
     unit ->
     Availability.plan * Prete_lp.Simplex.basis option) ->
  unit ->
  outcome
(** Run the ladder for one epoch.  [detour] — [(tables, installed plan,
    failed fiber)] — arms the Detour rung: when the splice validates,
    the patched plan is returned immediately (no solve, no retained
    state touched); otherwise a rejected Detour attempt is recorded and
    the ladder proceeds.  [primary] is the scheme's solve thunk
    (build it with {!Availability.Internal.plan_alloc_warm}, threading
    any deadline); it receives the ladder's retained basis as [~warm]
    ("rung 0" — reuse of the last epoch's vertex before any fallback)
    and returns the plan together with the basis to retain, [None] when
    the scheme has no LP basis to offer (e.g. ECMP).  A stale or
    irrelevant warm basis is harmless: the solver repairs or ignores it.
    [ts] is the currently installed tunnel set used for validation and
    the equal-split fallback.  [telemetry_gap] (default false) skips the
    Primary rung with cause {!Telemetry_gap}.  Only validated Primary
    successes refresh the last-good plan and the retained basis (a
    fallback plan is never re-cached, so the ladder cannot feed on its
    own output); the plan cache is revalidated against the current [ts]
    on every reuse.  Never raises on solver failures. *)

val notes : outcome -> Controller.note list
(** Render the ladder's attempts as {!Controller.note}s (stage
    [Te_compute]) for inclusion in a pipeline report. *)
