(** Seeded fault injection for the control loop (chaos harness).

    Each fault class models a distinct way the controller's {e inputs} go
    wrong — telemetry, degradation signals, or solve budget — while the
    network's ground truth stays untouched.  The injector draws from its
    {e own} RNG stream, so enabling or disabling faults never perturbs
    the epoch sample path of the simulation it is plugged into: the
    availability delta between a faulted and a fault-free run of the same
    seed is attributable to the faults alone. *)

type class_ =
  | Telemetry_dropout
      (** The telemetry stream is absent this epoch: the controller gets
          no observation at all and must fall back. *)
  | Stuck_sensor
      (** The monitor reports a frozen, uninformative reading for the
          degrading fiber (flat at the degradation threshold). *)
  | Noise_burst
      (** The degradation features are blasted with heavy noise. *)
  | False_positive
      (** A healthy fiber is reported as degrading. *)
  | Missed_degradation
      (** A real degradation is not reported. *)
  | Solver_pressure
      (** The TE solve gets an (expired or near-expired) budget. *)

val class_name : class_ -> string
val all_classes : class_ array

type spec = {
  fault : class_;
  rate : float;  (** Per-epoch firing probability, in [0, 1]. *)
}

val default_rate : class_ -> float
(** Sweep defaults — high enough that a few hundred epochs show the
    effect, low enough that most epochs stay clean. *)

type injector

val injector : ?seed:int -> ?pressure_budget_s:float -> spec list -> injector
(** [pressure_budget_s] (default 0) is the budget handed to the solver
    when {!Solver_pressure} fires; 0 means already expired, which forces
    the fallback ladder deterministically. *)

val substream : injector -> injector
(** [substream inj] advances [inj]'s private stream once and returns a
    new injector (same specs and budget) on an independent substream —
    {!Prete_util.Rng.split} applied to the fault stream.  Splitting one
    substream per epoch {e before} evaluation makes each epoch's fault
    draws independent of evaluation order, which is how the pool-sharded
    chaos harness keeps fault injection deterministic. *)

type observation = {
  seen : int option;
      (** Degradation state the controller observes (may differ from the
          truth under signal faults). *)
  features : Prete_optics.Hazard.features array;
      (** Per-fiber event features as observed (corrupted copies under
          sensor faults). *)
  gap : bool;  (** Telemetry gap: the primary solve should be skipped. *)
  budget_s : float option;  (** Injected solve budget, if any. *)
  fired : class_ list;  (** Fault classes that fired this epoch. *)
}

val observe :
  injector ->
  topo:Prete_net.Topology.t ->
  true_state:int option ->
  events:Prete_optics.Hazard.features array ->
  observation
(** One epoch of observation: every spec fires independently with its
    rate (signal faults apply only when relevant — a missed degradation
    needs a true one, a false positive needs a healthy epoch).  The
    [events] array is never mutated; corrupted copies are returned. *)

val corrupts_features : observation -> bool
(** Whether the observation differs from a clean one (used to bypass
    per-state plan caches that assume clean inputs). *)
