open Prete_optics

type class_ =
  | Telemetry_dropout
  | Stuck_sensor
  | Noise_burst
  | False_positive
  | Missed_degradation
  | Solver_pressure

let class_name = function
  | Telemetry_dropout -> "telemetry-dropout"
  | Stuck_sensor -> "stuck-sensor"
  | Noise_burst -> "noise-burst"
  | False_positive -> "false-positive"
  | Missed_degradation -> "missed-degradation"
  | Solver_pressure -> "solver-pressure"

let all_classes =
  [|
    Telemetry_dropout;
    Stuck_sensor;
    Noise_burst;
    False_positive;
    Missed_degradation;
    Solver_pressure;
  |]

type spec = { fault : class_; rate : float }

let default_rate = function
  | Telemetry_dropout -> 0.25
  | Stuck_sensor -> 0.5
  | Noise_burst -> 0.5
  | False_positive -> 0.15
  | Missed_degradation -> 0.75
  | Solver_pressure -> 0.5

type injector = {
  rng : Prete_util.Rng.t;  (** Private stream; never the simulation's. *)
  specs : spec list;
  pressure_budget_s : float;
}

let injector ?(seed = 77) ?(pressure_budget_s = 0.0) specs =
  List.iter
    (fun s ->
      if s.rate < 0.0 || s.rate > 1.0 then
        invalid_arg "Faults.injector: rate out of [0, 1]")
    specs;
  { rng = Prete_util.Rng.create seed; specs; pressure_budget_s }

let substream inj = { inj with rng = Prete_util.Rng.split inj.rng }

type observation = {
  seen : int option;
  features : Hazard.features array;
  gap : bool;
  budget_s : float option;
  fired : class_ list;
}

let stuck_features (f : Hazard.features) =
  (* A frozen reading: flat at the degradation threshold, no dynamics.
     The predictor sees the least informative degradation possible. *)
  { f with Hazard.degree = 3.0; gradient = 0.0; fluctuation = 0 }

let noisy_features rng (f : Hazard.features) =
  let clamp lo hi v = Float.max lo (Float.min hi v) in
  {
    f with
    Hazard.degree = clamp 3.0 10.0 (f.Hazard.degree +. (3.0 *. Prete_util.Rng.gaussian rng));
    gradient = Float.abs (f.Hazard.gradient *. exp (Prete_util.Rng.gaussian rng));
    fluctuation = f.Hazard.fluctuation + Prete_util.Rng.int rng 50;
  }

let observe inj ~topo ~true_state ~events =
  (* One bernoulli per spec per epoch, unconditionally: the draw count
     stays fixed so the injector stream is phase-stable across epochs. *)
  let firing =
    List.filter_map
      (fun s -> if Prete_util.Rng.bernoulli inj.rng s.rate then Some s.fault else None)
      inj.specs
  in
  let fires c = List.mem c firing in
  let seen = ref true_state in
  let features = ref events in
  let fired = ref [] in
  let mark c = fired := c :: !fired in
  let corrupt fiber f =
    let copy = Array.copy !features in
    copy.(fiber) <- f;
    features := copy
  in
  (* Signal faults first: they decide which fiber the sensor faults see. *)
  (match (true_state, fires Missed_degradation) with
  | Some _, true ->
    seen := None;
    mark Missed_degradation
  | _ -> ());
  (match (!seen, true_state, fires False_positive) with
  | None, None, true ->
    let nf = Prete_net.Topology.num_fibers topo in
    let fiber = Prete_util.Rng.int inj.rng nf in
    let epoch = Prete_util.Rng.int inj.rng 96 in
    seen := Some fiber;
    corrupt fiber (Hazard.sample_features inj.rng ~topo ~fiber ~epoch);
    mark False_positive
  | _ -> ());
  (match (!seen, fires Stuck_sensor) with
  | Some fiber, true ->
    corrupt fiber (stuck_features !features.(fiber));
    mark Stuck_sensor
  | _ -> ());
  (match (!seen, fires Noise_burst) with
  | Some fiber, true ->
    corrupt fiber (noisy_features inj.rng !features.(fiber));
    mark Noise_burst
  | _ -> ());
  let gap = fires Telemetry_dropout in
  if gap then mark Telemetry_dropout;
  let budget_s =
    if fires Solver_pressure then begin
      mark Solver_pressure;
      Some inj.pressure_budget_s
    end
    else None
  in
  { seen = !seen; features = !features; gap; budget_s; fired = List.rev !fired }

let corrupts_features o =
  List.exists
    (function
      | Stuck_sensor | Noise_burst | False_positive -> true
      | Telemetry_dropout | Missed_degradation | Solver_pressure -> false)
    o.fired
