(** Controller pipeline model (§5, Fig. 11; Fig. 16b).

    When the telemetry stream shows a degradation, the controller runs,
    in order: optical-data analysis (detection), NN inference, tunnel
    updates, failure-scenario regeneration, and TE computation.  The
    testbed measured (Fig. 11): detection and inference in milliseconds,
    scenario regeneration ≈ 10 ms, TE computation sub-second, and tunnel
    establishment dominating — serialized, ≈ 250 ms per tunnel (5 s for
    20 tunnels, linear in the count).

    We reproduce the pipeline with the stages we actually run measured by
    wall clock (inference on our MLP, scenario regeneration, TE
    optimization on our solver) and the hardware-bound stages (detection
    in the optical agent, per-tunnel switch programming) taken from the
    paper's measured constants.

    Timing uses {!Prete_util.Clock}, which is monotonicized: an NTP step
    mid-stage can no longer produce a negative duration. *)

type stage =
  | Detection
  | Inference
  | Tunnel_update
  | Scenario_regen
  | Te_compute

val stage_name : stage -> string

type timing = {
  stage : stage;
  start_s : float;  (** Offset from the degradation signal. *)
  duration_s : float;
}

type note = {
  note_stage : stage;  (** Stage the event belongs to. *)
  label : string;  (** Short machine-friendly tag, e.g. ["fallback:cached"]. *)
  detail : string;  (** Human-readable explanation. *)
  tries : int;  (** Attempts made at this stage (1 = first try). *)
  backoff_s : float;  (** Total backoff delay charged to retries. *)
}
(** A structured annotation attached to a pipeline run — the resilience
    layer records fallback-ladder rungs, retries, and degradation causes
    here so operators can audit {e why} a given plan was produced. *)

type report = {
  timeline : timing list;  (** In execution order. *)
  end_to_end_s : float;  (** Total pipeline latency. *)
  notes : note list;  (** Resilience annotations; [[]] on a clean run. *)
}

val per_tunnel_setup_s : float
(** 0.25 s — the Fig. 11b slope (serialized establishment). *)

val detection_s : float
(** 0.05 s — optical-data analysis before the signal fires. *)

val tunnel_update_time : int -> float
(** Linear serialized model of Fig. 11b. *)

val wall : (unit -> 'a) -> 'a * float
(** [wall f] runs [f] and returns its result with the elapsed wall-clock
    seconds on the monotonicized {!Prete_util.Clock} (never negative). *)

val run :
  infer:(unit -> unit) ->
  regen:(unit -> unit) ->
  te:(unit -> 'a) ->
  n_new_tunnels:int ->
  unit ->
  'a * report
(** Execute and wall-clock the software stages ([infer], [regen], [te]
    are thunks that actually perform the work), model the hardware
    stages, and assemble the Fig. 11a timeline.  Returns [te]'s result
    alongside the report so callers no longer need side-channel refs. *)

val with_notes : report -> note list -> report
(** Append resilience notes to a report. *)

val within_budget : report -> gap_to_cut_s:float -> bool
(** Whether the pipeline completes before the expected degradation→cut
    gap — the §5 feasibility argument. *)
