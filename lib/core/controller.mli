(** Controller pipeline model (§5, Fig. 11; Fig. 16b).

    When the telemetry stream shows a degradation, the controller runs,
    in order: optical-data analysis (detection), NN inference, tunnel
    updates, failure-scenario regeneration, and TE computation.  The
    testbed measured (Fig. 11): detection and inference in milliseconds,
    scenario regeneration ≈ 10 ms, TE computation sub-second, and tunnel
    establishment dominating — serialized, ≈ 250 ms per tunnel (5 s for
    20 tunnels, linear in the count).

    We reproduce the pipeline with the stages we actually run measured by
    wall clock (inference on our MLP, scenario regeneration, TE
    optimization on our solver) and the hardware-bound stages (detection
    in the optical agent, per-tunnel switch programming) taken from the
    paper's measured constants.

    Timing uses {!Prete_util.Clock}, which is monotonicized: an NTP step
    mid-stage can no longer produce a negative duration. *)

type stage =
  | Detection
  | Inference
  | Tunnel_update
  | Scenario_regen
  | Te_compute

val stage_name : stage -> string

type timing = {
  stage : stage;
  start_s : float;  (** Offset from the degradation signal. *)
  duration_s : float;
}

type note = {
  note_stage : stage;  (** Stage the event belongs to. *)
  label : string;  (** Short machine-friendly tag, e.g. ["fallback:cached"]. *)
  detail : string;  (** Human-readable explanation. *)
  tries : int;  (** Attempts made at this stage (1 = first try). *)
  backoff_s : float;  (** Total backoff delay charged to retries. *)
}
(** A structured annotation attached to a pipeline run — the resilience
    layer records fallback-ladder rungs, retries, and degradation causes
    here so operators can audit {e why} a given plan was produced. *)

type report = {
  timeline : timing list;  (** In execution order. *)
  end_to_end_s : float;  (** Total pipeline latency. *)
  notes : note list;  (** Resilience annotations; [[]] on a clean run. *)
  solver : Prete_lp.Solver_stats.t option;
      (** Solver telemetry for this epoch when the caller passed
          [?solver_stats] to {!run}; [None] otherwise. *)
}

val per_tunnel_setup_s : float
(** 0.25 s — the Fig. 11b slope (serialized establishment). *)

val detection_s : float
(** 0.05 s — optical-data analysis before the signal fires. *)

val tunnel_update_time : int -> float
(** Linear serialized model of Fig. 11b. *)

val per_member_handling_s : float
(** 0.002 s — per-member batch-handling cost of a coalesced re-solve. *)

val batch_latency : members:int -> n_new_tunnels:int -> float
(** Modeled end-to-end install latency of one batched reactive re-solve
    covering [members] alarmed fibers: detection, per-member batch
    handling, inference + plan push overheads, and the Fig. 11b
    tunnel-establishment time for the Algorithm 1 update the plan
    carries.  A pure (logical) quantity — both the streaming runtime and
    the sharded runtime's cross-shard coalescer use it for their event
    logs, so it never reads a clock.  Raises [Invalid_argument] for
    non-positive [members]. *)

val wall : (unit -> 'a) -> 'a * float
(** [wall f] runs [f] and returns its result with the elapsed wall-clock
    seconds on the monotonicized {!Prete_util.Clock} (never negative). *)

val run :
  ?solver_stats:Prete_lp.Solver_stats.t ->
  infer:(unit -> unit) ->
  regen:(unit -> unit) ->
  te:(unit -> 'a) ->
  n_new_tunnels:int ->
  unit ->
  'a * report
(** Execute and wall-clock the software stages ([infer], [regen], [te]
    are thunks that actually perform the work), model the hardware
    stages, and assemble the Fig. 11a timeline.  Returns [te]'s result
    alongside the report so callers no longer need side-channel refs.
    [solver_stats], when given, is attached to the report and charged
    the TE-compute wall time (stage ["te_compute"]); the [te] thunk is
    expected to merge its per-solve counters into the same record. *)

val with_notes : report -> note list -> report
(** Append resilience notes to a report. *)

val within_budget : report -> gap_to_cut_s:float -> bool
(** Whether the pipeline completes before the expected degradation→cut
    gap — the §5 feasibility argument. *)

(** {2 Per-epoch plan cache}

    Successive controller epochs frequently present {e identical} inputs
    (same tunnel set, same scenario classes, same demands — e.g. a
    telemetry re-trigger with no real change).  The cache keys plans by a
    structural hash of those inputs so an unchanged epoch skips the TE
    solve entirely.

    Invalidation is implicit in the key: anything that should change the
    plan — a tunnel added or rerouted, a demand value, a scenario class's
    survivor set or probability, the observed failure state (via [salt])
    — lands in the hash, so a changed epoch simply misses.  Degraded
    plans are {e never} stored (see {!cache_store}).  Eviction is FIFO at
    a fixed capacity. *)

type cache_key

val plan_key :
  ts:Prete_net.Tunnels.t ->
  demands:float array ->
  ?classes:Scenario.Classes.cls array array ->
  ?probs:float array ->
  ?salt:int list ->
  unit ->
  cache_key
(** Structural hash (FNV-1a over the full contents, not [Hashtbl.hash],
    which truncates) of the plan-determining inputs: flow endpoints,
    tunnel link paths, demands, and — when supplied — per-flow scenario
    classes (survivor sets + probabilities) or raw fiber failure
    probabilities.  [salt] folds in extra discriminants such as the
    observed failure state or the scheme identity.  The session-default
    LP engine and pricing rule are always folded in: distinct engines can
    land on different degenerate vertices, so plans never migrate across
    an engine switch. *)

type 'p cache

val cache : ?capacity:int -> unit -> 'p cache
(** Fresh cache holding at most [capacity] (default 64) plans.  All
    operations are mutex-guarded, so one cache may serve epochs sharded
    across domains (find/store remain individually atomic; concurrent
    misses on the same key may each solve and store — last write wins,
    which is harmless because stored plans are deterministic functions
    of the key). *)

val cache_find : 'p cache -> cache_key -> 'p option
(** Lookup; counts a hit or miss. *)

val cache_store : 'p cache -> cache_key -> degraded:bool -> 'p -> unit
(** Insert a plan.  [degraded = true] plans are refused: a deadline-
    truncated plan is not the plan for those inputs, and caching it would
    replay it on every identical future epoch. *)

val cache_stats : 'p cache -> int * int
(** [(hits, misses)] since creation. *)
