open Prete_net
open Prete_lp

type cause =
  | Solver_timeout
  | Solver_numerical of string
  | Infeasible_beta of string
  | Telemetry_gap
  | Plan_rejected
  | Detour_applied of int
  | Unexpected of string

let cause_name = function
  | Solver_timeout -> "solver-timeout"
  | Solver_numerical _ -> "solver-numerical"
  | Infeasible_beta _ -> "infeasible-beta"
  | Telemetry_gap -> "telemetry-gap"
  | Plan_rejected -> "plan-rejected"
  | Detour_applied _ -> "detour-applied"
  | Unexpected _ -> "unexpected"

type rung = Detour | Primary | Cached | Equal_split

let rung_name = function
  | Detour -> "detour"
  | Primary -> "primary"
  | Cached -> "cached"
  | Equal_split -> "equal-split"

type attempt = {
  att_rung : rung;
  att_tries : int;
  att_backoff_s : float;
  att_cause : cause option;
}

type outcome = {
  plan : Availability.plan;
  rung : rung;
  cause : cause option;
  attempts : attempt list;
  backoff_s : float;
}

let degraded o = o.rung <> Primary || o.plan.Availability.p_degraded

type t = {
  max_tries : int;
  base_backoff_s : float;
  mutable last_good : Availability.plan option;
  mutable last_basis : Simplex.basis option;
  state_lock : Mutex.t;
      (* Guards the two retained-state fields ("rung 0" basis and the
         Cached rung's plan) so one ladder can serve epochs running on
         several domains.  The lock is never held across a solve — only
         across the read/update of the retained state itself. *)
}

let create ?(max_tries = 2) ?(base_backoff_s = 0.1) () =
  if max_tries < 1 then invalid_arg "Resilience.create: max_tries must be >= 1";
  {
    max_tries;
    base_backoff_s;
    last_good = None;
    last_basis = None;
    state_lock = Mutex.create ();
  }

let guarded t f =
  Mutex.lock t.state_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_lock) f

let last_basis t = guarded t (fun () -> t.last_basis)

let last_good t = guarded t (fun () -> t.last_good)

let classify = function
  | Simplex.Timeout -> Solver_timeout
  | Simplex.Numerical msg -> Solver_numerical msg
  | Te.Infeasible_problem msg -> Infeasible_beta msg
  | e -> Unexpected (Printexc.to_string e)

(* One variable per tunnel (id order), one capacity row per used link: the
   minimal model under which an allocation vector is routable. *)
let capacity_model (ts : Tunnels.t) =
  let topo = ts.Tunnels.topo in
  let m = Lp.create () in
  let a_vars =
    Array.map
      (fun (tn : Tunnels.tunnel) ->
        Lp.add_var m (Printf.sprintf "a%d" tn.Tunnels.tunnel_id))
      ts.Tunnels.tunnels
  in
  List.iter
    (fun (lid, terms) ->
      let terms = List.map (fun (tid, c) -> (c, a_vars.(tid))) terms in
      ignore (Lp.add_constraint m terms Lp.Le (Topology.link topo lid).Topology.capacity))
    (Te.capacity_terms ts);
  m

let plan_feasible (ts : Tunnels.t) (plan : Availability.plan) =
  Array.length plan.Availability.p_alloc = Array.length ts.Tunnels.tunnels
  && Simplex.feasible (capacity_model ts) plan.Availability.p_alloc

(* Equal split with per-tunnel bottleneck scaling.  After scaling, the load
   of link l is Σ_t r_t·s_t with s_t ≤ factor_l for every t through l, so
   load'_l ≤ factor_l · load_l ≤ c_l: capacity-feasible by construction.
   The safety margin absorbs floating-point round-off against the
   validator's absolute epsilon. *)
let equal_split (ts : Tunnels.t) ~demands =
  let topo = ts.Tunnels.topo in
  let nt = Array.length ts.Tunnels.tunnels in
  let rate = Array.make nt 0.0 in
  Array.iteri
    (fun f tids ->
      let d = demands.(f) in
      let n = List.length tids in
      if d > 0.0 && n > 0 then
        List.iter (fun tid -> rate.(tid) <- d /. float_of_int n) tids)
    ts.Tunnels.of_flow;
  let load = Array.make (Topology.num_links topo) 0.0 in
  Array.iteri
    (fun tid r ->
      if r > 0.0 then
        List.iter
          (fun lid -> load.(lid) <- load.(lid) +. r)
          ts.Tunnels.tunnels.(tid).Tunnels.links)
    rate;
  let factor lid =
    let c = (Topology.link topo lid).Topology.capacity in
    if load.(lid) <= c then 1.0 else c /. load.(lid)
  in
  let safety = 1.0 -. 1e-9 in
  let alloc =
    Array.mapi
      (fun tid r ->
        if r <= 0.0 then 0.0
        else
          let bottleneck =
            List.fold_left
              (fun b lid -> Float.min b (factor lid))
              1.0
              ts.Tunnels.tunnels.(tid).Tunnels.links
          in
          r *. bottleneck *. safety)
      rate
  in
  { Availability.p_alloc = alloc; p_ts = ts; p_admitted = None; p_degraded = true }

(* The Detour rung's plan: splice the precomputed detours for [fiber]
   into the installed allocation, then revalidate against the extended
   tunnel set.  Marked degraded so no plan cache will retain it. *)
let try_detour ~detours ~(installed : Availability.plan) ~fiber =
  match
    Detours.splice detours ~fiber ~alloc:installed.Availability.p_alloc
  with
  | None -> None
  | Some (ts', alloc', _rerouted, _flows) ->
    let plan =
      {
        Availability.p_alloc = alloc';
        p_ts = ts';
        p_admitted = installed.Availability.p_admitted;
        p_degraded = true;
      }
    in
    if plan_feasible ts' plan then Some plan else None

let detour_attempt cause =
  { att_rung = Detour; att_tries = 1; att_backoff_s = 0.0; att_cause = cause }

let detour_patch ~detours ~installed ~fiber =
  match try_detour ~detours ~installed ~fiber with
  | None -> None
  | Some plan ->
    Some
      {
        plan;
        rung = Detour;
        cause = Some (Detour_applied fiber);
        attempts = [ detour_attempt None ];
        backoff_s = 0.0;
      }

let plan_epoch t ~ts ~demands ?(telemetry_gap = false) ?detour ~primary () =
  let attempts = ref [] in
  let push a = attempts := a :: !attempts in
  let finish plan rung cause =
    let attempts = List.rev !attempts in
    let backoff_s =
      List.fold_left (fun acc a -> acc +. a.att_backoff_s) 0.0 attempts
    in
    { plan; rung; cause; attempts; backoff_s }
  in
  (* Top rung, link-failure causes only: splice precomputed detours into
     the installed plan for the affected tunnels.  A successful patch is
     returned immediately — it is the reaction whose latency does not
     depend on the LP; the warm re-solve replaces it when it lands.  The
     detour plan never refreshes the last-good cache (only validated
     Primary successes below do), so the ladder cannot feed on patched
     plans. *)
  let detoured =
    match detour with
    | None -> None
    | Some (detours, installed, fiber) ->
      (match try_detour ~detours ~installed ~fiber with
      | Some plan ->
        push (detour_attempt None);
        Some (finish plan Detour (Some (Detour_applied fiber)))
      | None ->
        push (detour_attempt (Some Plan_rejected));
        None)
  in
  match detoured with
  | Some outcome -> outcome
  | None ->
  (* Rung 1: the scheme's own solve, retried with charged backoff. *)
  let primary_result =
    if telemetry_gap then begin
      push
        {
          att_rung = Primary;
          att_tries = 0;
          att_backoff_s = 0.0;
          att_cause = Some Telemetry_gap;
        };
      Error Telemetry_gap
    end
    else begin
      let last_cause = ref Plan_rejected in
      let backoff = ref 0.0 in
      let found = ref None in
      let k = ref 0 in
      while Option.is_none !found && !k < t.max_tries do
        if !k > 0 then
          backoff := !backoff +. (t.base_backoff_s *. (2.0 ** float_of_int (!k - 1)));
        incr k;
        (* Rung 0 of the ladder: hand the primary the last successful
           solve's basis.  A stale basis is safe — the solver's repair
           path treats it as a hint, never as ground truth. *)
        let warm = guarded t (fun () -> t.last_basis) in
        match primary ~warm () with
        | exception e -> last_cause := classify e
        | plan, basis ->
          (* A plan with tunnel updates is indexed by its own (merged)
             tunnel set; validate against that. *)
          if plan_feasible plan.Availability.p_ts plan then begin
            (match basis with
            | Some _ -> guarded t (fun () -> t.last_basis <- basis)
            | None -> ());
            found := Some plan
          end
          else last_cause := Plan_rejected
      done;
      match !found with
      | Some plan ->
        push
          {
            att_rung = Primary;
            att_tries = !k;
            att_backoff_s = !backoff;
            att_cause = None;
          };
        Ok plan
      | None ->
        push
          {
            att_rung = Primary;
            att_tries = !k;
            att_backoff_s = !backoff;
            att_cause = Some !last_cause;
          };
        Error !last_cause
    end
  in
  match primary_result with
  | Ok plan ->
    (* Only primary successes refresh the cache: re-caching a fallback
       would let the ladder feed on its own output. *)
    guarded t (fun () -> t.last_good <- Some plan);
    finish plan Primary None
  | Error root ->
    (* Rung 2: last-good plan, revalidated against the current tunnels.
       The snapshot is taken under the lock; validation (an LP check)
       deliberately runs outside it. *)
    let cached_ok =
      match guarded t (fun () -> t.last_good) with
      | Some plan when plan_feasible ts plan -> Some plan
      | _ -> None
    in
    (match cached_ok with
    | Some plan ->
      push
        { att_rung = Cached; att_tries = 1; att_backoff_s = 0.0; att_cause = None };
      finish plan Cached (Some root)
    | None ->
      push
        {
          att_rung = Cached;
          att_tries = 1;
          att_backoff_s = 0.0;
          att_cause = Some Plan_rejected;
        };
      (* Rung 3: feasible by construction. *)
      let plan = equal_split ts ~demands in
      push
        {
          att_rung = Equal_split;
          att_tries = 1;
          att_backoff_s = 0.0;
          att_cause = None;
        };
      finish plan Equal_split (Some root))

let notes o =
  List.map
    (fun a ->
      let status =
        match a.att_cause with None -> "ok" | Some c -> cause_name c
      in
      {
        Controller.note_stage = Controller.Te_compute;
        label = Printf.sprintf "%s:%s" (rung_name a.att_rung) status;
        detail =
          (match a.att_cause with
          | None -> Printf.sprintf "%s rung accepted a plan" (rung_name a.att_rung)
          | Some Solver_timeout -> "solve budget expired before a feasible incumbent"
          | Some (Solver_numerical msg) -> "solver numerical failure: " ^ msg
          | Some (Infeasible_beta msg) -> "TE problem infeasible: " ^ msg
          | Some Telemetry_gap -> "telemetry gap; primary solve skipped"
          | Some Plan_rejected -> "no validated plan at this rung"
          | Some (Detour_applied fb) ->
            Printf.sprintf "precomputed detours spliced around fiber %d" fb
          | Some (Unexpected msg) -> "unexpected failure: " ^ msg);
        tries = a.att_tries;
        backoff_s = a.att_backoff_s;
      })
    o.attempts
