open Prete_net
open Prete_optics
open Prete_lp

type env = {
  ts : Tunnels.t;
  traffic : Traffic.t;
  model : Fiber_model.t;
  beta : float;
  epoch : int;
  degr_events : Hazard.features array;
  true_hazard : float array;
  epsilon : float;
  tau_flexile : float;
  tau_arrow : float;
  epoch_seconds : float;
}

let make_env ?(seed = 23) ?(beta = 0.999) ?(epoch = 12) ?(epsilon = 1e-4)
    ?(tau_flexile = 300.0) ?(tau_arrow = 8.0) ?model ?traffic ?tunnels topo =
  let model = match model with Some m -> m | None -> Fiber_model.generate topo in
  let traffic = match traffic with Some t -> t | None -> Traffic.generate topo in
  let ts =
    match tunnels with Some t -> t | None -> Tunnels.build topo traffic.Traffic.pairs
  in
  let rng = Prete_util.Rng.create seed in
  let nf = Topology.num_fibers topo in
  let degr_events =
    Array.init nf (fun fiber -> Hazard.sample_features rng ~topo ~fiber ~epoch:(epoch * 4))
  in
  let true_hazard = Array.map (Hazard.eval ~num_fibers:nf) degr_events in
  {
    ts;
    traffic;
    model;
    beta;
    epoch;
    degr_events;
    true_hazard;
    epsilon;
    tau_flexile;
    tau_arrow;
    epoch_seconds = Hazard.epoch_seconds;
  }

(* --------------------------------------------------------------------- *)
(* State distributions                                                     *)
(* --------------------------------------------------------------------- *)

let degradation_states env =
  let pd = env.model.Fiber_model.p_degrade in
  let none = Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 pd in
  let states = ref [ (None, none) ] in
  Array.iteri
    (fun n p ->
      if p > 0.0 then begin
        let prob = none /. (1.0 -. p) *. p in
        states := (Some n, prob) :: !states
      end)
    pd;
  let states = Array.of_list (List.rev !states) in
  let total = Array.fold_left (fun a (_, p) -> a +. p) 0.0 states in
  Array.map (fun (s, p) -> (s, p /. total)) states

let conditional_cut_probs env ~degraded =
  Array.mapi
    (fun m pu ->
      match degraded with
      | Some n when n = m -> env.true_hazard.(n)
      | _ -> pu)
    env.model.Fiber_model.p_unpredictable

let cut_outcomes env ~degraded =
  let probs = conditional_cut_probs env ~degraded in
  let none = Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs in
  let outcomes = ref [ (None, none) ] in
  Array.iteri
    (fun m p ->
      if p > 0.0 then outcomes := (Some m, none /. (1.0 -. p) *. p) :: !outcomes)
    probs;
  let outcomes = Array.of_list (List.rev !outcomes) in
  let total = Array.fold_left (fun a (_, p) -> a +. p) 0.0 outcomes in
  Array.map (fun (s, p) -> (s, p /. total)) outcomes

(* --------------------------------------------------------------------- *)
(* Per-flow delivery under an allocation                                   *)
(* --------------------------------------------------------------------- *)

(* Surviving allocated rate of a flow when [cut] (a fiber) fails. *)
let surviving_rate (ts : Tunnels.t) alloc flow ~cut =
  List.fold_left
    (fun acc tid ->
      let tn = ts.Tunnels.tunnels.(tid) in
      let dead =
        match cut with
        | None -> false
        | Some fb -> Routing.uses_fiber ts.Tunnels.topo tn.Tunnels.links fb
      in
      if dead then acc else acc +. alloc.(tid))
    0.0 ts.Tunnels.of_flow.(flow)

(* ECMP splits each flow equally over its minimum-cost surviving tunnels
   only (equal-cost multipath), capacity-oblivious; links may overload, in
   which case every tunnel through the link is throttled proportionally. *)
let ecmp_losses (ts : Tunnels.t) demands ~cut =
  let topo = ts.Tunnels.topo in
  let nt = Array.length ts.Tunnels.tunnels in
  let rate = Array.make nt 0.0 in
  let tunnel_cost tid =
    Routing.path_length_km topo ts.Tunnels.tunnels.(tid).Tunnels.links
    +. (50.0 *. float_of_int (List.length ts.Tunnels.tunnels.(tid).Tunnels.links))
  in
  Array.iteri
    (fun f tids ->
      ignore tids;
      let d = demands.(f) in
      if d > 0.0 then begin
        let alive =
          List.filter
            (fun tid ->
              match cut with
              | None -> true
              | Some fb ->
                not
                  (Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb))
            ts.Tunnels.of_flow.(f)
        in
        let min_cost =
          List.fold_left (fun acc tid -> Float.min acc (tunnel_cost tid)) infinity alive
        in
        let equal_cost =
          List.filter (fun tid -> tunnel_cost tid <= min_cost +. 1e-6) alive
        in
        let n = List.length equal_cost in
        if n > 0 then
          List.iter (fun tid -> rate.(tid) <- d /. float_of_int n) equal_cost
      end)
    ts.Tunnels.of_flow;
  let load = Array.make (Topology.num_links topo) 0.0 in
  Array.iteri
    (fun tid r ->
      if r > 0.0 then
        List.iter
          (fun lid -> load.(lid) <- load.(lid) +. r)
          ts.Tunnels.tunnels.(tid).Tunnels.links)
    rate;
  let factor lid =
    let c = (Topology.link topo lid).Topology.capacity in
    if load.(lid) <= c then 1.0 else c /. load.(lid)
  in
  Array.mapi
    (fun f _ ->
      let d = demands.(f) in
      if d <= 0.0 then 0.0
      else begin
        let delivered =
          List.fold_left
            (fun acc tid ->
              let r = rate.(tid) in
              if r <= 0.0 then acc
              else
                let bottleneck =
                  List.fold_left
                    (fun b lid -> Float.min b (factor lid))
                    1.0
                    ts.Tunnels.tunnels.(tid).Tunnels.links
                in
                acc +. (r *. bottleneck))
            0.0 ts.Tunnels.of_flow.(f)
        in
        Float.max 0.0 (1.0 -. (delivered /. d))
      end)
    ts.Tunnels.flows

(* Does the flow have traffic allocated on tunnels through the cut fiber?
   Such flows are the cut's "affected flows". *)
let flow_affected (ts : Tunnels.t) alloc flow ~cut =
  match cut with
  | None -> false
  | Some fb ->
    List.exists
      (fun tid ->
        alloc.(tid) > 1e-9
        && Routing.uses_fiber ts.Tunnels.topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
      ts.Tunnels.of_flow.(flow)

(* Optimal served fractions on the surviving topology: the Oracle
   allocation and Flexile's post-convergence recomputation. *)
let max_served ?engine ?pricing env ~demands ~cuts =
  let ts = env.ts in
  let topo = ts.Tunnels.topo in
  let m = Lp.create () in
  let alive tid =
    not
      (List.exists
         (fun fb -> Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
         cuts)
  in
  let a_vars =
    Array.map
      (fun (tn : Tunnels.tunnel) ->
        let ub = if alive tn.Tunnels.tunnel_id then infinity else 0.0 in
        Lp.add_var m ~ub (Printf.sprintf "a%d" tn.Tunnels.tunnel_id))
      ts.Tunnels.tunnels
  in
  (* Capacity rows over links used by surviving tunnels. *)
  List.iter
    (fun (lid, terms) ->
      let terms =
        List.filter_map
          (fun (tid, c) -> if alive tid then Some (c, a_vars.(tid)) else None)
          terms
      in
      if terms <> [] then
        ignore
          (Lp.add_constraint m terms Lp.Le (Topology.link topo lid).Topology.capacity))
    (Te.capacity_terms ts);
  let total = Float.max 1e-9 (Prete_util.Stats.sum demands) in
  let objective = ref [] in
  let s_vars =
    Array.mapi
      (fun f _ ->
        let d = demands.(f) in
        let s = Lp.add_var m ~ub:1.0 (Printf.sprintf "s%d" f) in
        if d > 0.0 then begin
          let terms =
            (-.d, s) :: List.map (fun tid -> (1.0, a_vars.(tid))) ts.Tunnels.of_flow.(f)
          in
          ignore (Lp.add_constraint m terms Lp.Ge 0.0);
          objective := (d /. total, s) :: !objective
        end
        else
          (* Zero-demand flows are trivially served. *)
          ignore (Lp.add_constraint m [ (1.0, s) ] Lp.Ge 1.0);
        s)
      ts.Tunnels.flows
  in
  Lp.set_objective m Lp.Maximize !objective;
  match Simplex.solve ?engine ?pricing m with
  | Simplex.Optimal sol -> Array.map (fun s -> Simplex.value sol s) s_vars
  | Simplex.Infeasible | Simplex.Unbounded ->
    invalid_arg "Availability.max_served: LP failed (internal error)"

(* --------------------------------------------------------------------- *)
(* Scheme allocation plans                                                 *)
(* --------------------------------------------------------------------- *)

type plan = {
  p_alloc : float array;
  p_ts : Tunnels.t;
  p_admitted : float array option;
      (** Ingress rate limits for admission-style schemes. *)
  p_degraded : bool;
      (** The solve budget expired; the allocation is feasible but not
          proven optimal. *)
}

let te_solve_warm env ?deadline ?warm ?engine ?pricing ~demands ~probs
    ~(ts : Tunnels.t) () =
  let p = Te.make_problem ~ts ~demands ~probs ~beta:env.beta () in
  (* Sweeps call this hundreds of times; the relaxation start buys nothing
     measurable on these instances (the second phase dominates delivered
     quality) but triples the cost. *)
  let sol = Te.solve ~relaxation_start:false ?deadline ?warm ?engine ?pricing p in
  ( { p_alloc = sol.Te.alloc; p_ts = ts; p_admitted = None; p_degraded = sol.Te.degraded },
    sol.Te.basis )

let admission_solve env ?deadline ?engine ?pricing ~demands ~probs () =
  let p = Te.make_problem ~ts:env.ts ~demands ~probs ~beta:env.beta () in
  let adm = Te.solve_admission ?deadline ?engine ?pricing p in
  {
    p_alloc = adm.Te.adm_alloc;
    p_ts = env.ts;
    p_admitted = Some adm.Te.admitted;
    p_degraded = adm.Te.adm_degraded;
  }

let ffc_alloc env ?deadline ?engine ?pricing ~demands ~k () =
  (* Probability-oblivious full coverage of all ≤ k-cut scenarios: every
     class covered regardless of β; admission-style like FFC itself. *)
  let nf = Array.length env.model.Fiber_model.p_cut in
  let probs = Array.make nf 0.01 in
  let scenarios = Scenario.normalize (Scenario.enumerate ~probs ~max_order:k ()) in
  let p = { Te.ts = env.ts; Te.demands = demands; Te.scenarios; Te.beta = 0.999999 } in
  let adm =
    Te.solve_admission ~max_rounds:1 ~skip_unprotectable:true ?deadline ?engine
      ?pricing p
  in
  {
    p_alloc = adm.Te.adm_alloc;
    p_ts = env.ts;
    p_admitted = Some adm.Te.admitted;
    p_degraded = adm.Te.adm_degraded;
  }

let ecmp_alloc env ~demands =
  let ts = env.ts in
  let nt = Array.length ts.Tunnels.tunnels in
  let alloc = Array.make nt 0.0 in
  Array.iteri
    (fun f tids ->
      ignore tids;
      let d = demands.(f) in
      let tl = ts.Tunnels.of_flow.(f) in
      let n = List.length tl in
      if d > 0.0 && n > 0 then
        List.iter (fun tid -> alloc.(tid) <- d /. float_of_int n) tl)
    ts.Tunnels.of_flow;
  { p_alloc = alloc; p_ts = ts; p_admitted = None; p_degraded = false }

(* SMORE: load-balancing ratios over the precomputed tunnels minimizing
   the max link utilization of the current traffic matrix; when demand
   cannot fit (u* > 1) the allocation is scaled down proportionally
   (ingress policing at the oversubscription factor). *)
let smore_alloc env ?deadline ?engine ?pricing ~demands () =
  let ts = env.ts in
  let topo = ts.Tunnels.topo in
  let m = Lp.create () in
  let a_vars =
    Array.map
      (fun (tn : Tunnels.tunnel) -> Lp.add_var m (Printf.sprintf "a%d" tn.Tunnels.tunnel_id))
      ts.Tunnels.tunnels
  in
  let u = Lp.add_var m "u" in
  Array.iteri
    (fun f _ ->
      let d = demands.(f) in
      if d > 0.0 then begin
        let terms = List.map (fun tid -> (1.0, a_vars.(tid))) ts.Tunnels.of_flow.(f) in
        ignore (Lp.add_constraint m terms Lp.Eq d)
      end)
    ts.Tunnels.flows;
  List.iter
    (fun (lid, terms) ->
      let terms =
        (-.(Topology.link topo lid).Topology.capacity, u)
        :: List.map (fun (tid, c) -> (c, a_vars.(tid))) terms
      in
      ignore (Lp.add_constraint m terms Lp.Le 0.0))
    (Te.capacity_terms ts);
  Lp.set_objective m Lp.Minimize [ (1.0, u) ];
  match Simplex.solve ?deadline ?engine ?pricing m with
  | Simplex.Optimal sol ->
    let scale = Float.min 1.0 (1.0 /. Float.max 1e-9 (Simplex.value sol u)) in
    let alloc =
      Array.init (Array.length ts.Tunnels.tunnels) (fun t ->
          scale *. Simplex.value sol a_vars.(t))
    in
    { p_alloc = alloc; p_ts = ts; p_admitted = None; p_degraded = sol.Simplex.degraded }
  | Simplex.Infeasible | Simplex.Unbounded ->
    invalid_arg "Availability.smore_alloc: LP failed (internal error)"

let flexile_alloc env ?deadline ?engine ?pricing ~demands () =
  (* Reactive: optimize for the no-failure scenario only. *)
  let nf = Array.length env.model.Fiber_model.p_cut in
  let probs = Array.make nf 0.0 in
  let scenarios = Scenario.enumerate ~probs () in
  let p = { Te.ts = env.ts; Te.demands = demands; Te.scenarios; Te.beta = 0.99 } in
  let sol = Te.solve ~relaxation_start:false ?deadline ?engine ?pricing p in
  { p_alloc = sol.Te.alloc; p_ts = env.ts; p_admitted = None; p_degraded = sol.Te.degraded }

let prete_alloc_warm env (cfg : Schemes.prete_config) ?deadline ?warm ?engine
    ?pricing ?degr_features ~demands ~degraded () =
  let features = match degr_features with Some f -> f | None -> env.degr_events in
  let obs =
    {
      Calibrate.degraded =
        (match degraded with
        | None -> []
        | Some n -> [ (n, features.(n)) ]);
      Calibrate.will_cut = [];
    }
  in
  let probs =
    Calibrate.probabilities (Calibrate.Calibrated cfg.Schemes.predictor) env.model obs
  in
  let ts =
    match degraded with
    | Some n when cfg.Schemes.update_tunnels && cfg.Schemes.ratio > 0.0 ->
      Tunnel_update.merged
        (Tunnel_update.react ~ratio:cfg.Schemes.ratio env.ts ~degraded_fiber:n ())
    | _ -> env.ts
  in
  te_solve_warm env ?deadline ?warm ?engine ?pricing ~demands ~probs ~ts ()

(* Warm-aware dispatch: only the PreTE scheme consumes and produces an LP
   basis today — other schemes either solve a differently-shaped LP or
   none at all, and return [None]. *)
let plan_alloc_warm ?deadline ?warm ?engine ?pricing ?degr_features env scheme
    ~demands ~degraded =
  match scheme with
  | Schemes.Ecmp -> (ecmp_alloc env ~demands, None)
  | Schemes.Smore -> (smore_alloc env ?deadline ?engine ?pricing ~demands (), None)
  | Schemes.Ffc k -> (ffc_alloc env ?deadline ?engine ?pricing ~demands ~k (), None)
  | Schemes.Teavar | Schemes.Arrow ->
    ( admission_solve env ?deadline ?engine ?pricing ~demands
        ~probs:env.model.Fiber_model.p_cut (),
      None )
  | Schemes.Flexile -> (flexile_alloc env ?deadline ?engine ?pricing ~demands (), None)
  | Schemes.Prete cfg ->
    prete_alloc_warm env cfg ?deadline ?warm ?engine ?pricing ?degr_features ~demands
      ~degraded ()
  | Schemes.Oracle ->
    (* The oracle allocates per cut outcome; the "plan" here is unused
       (handled specially in [availability]). *)
    (ecmp_alloc env ~demands, None)

let plan_alloc ?deadline ?engine ?pricing ?degr_features env scheme ~demands ~degraded =
  fst
    (plan_alloc_warm ?deadline ?engine ?pricing ?degr_features env scheme ~demands
       ~degraded)

(* --------------------------------------------------------------------- *)
(* Availability                                                            *)
(* --------------------------------------------------------------------- *)

(* Demand-weighted mean: losing a trunk flow hurts availability more than
   losing a small one, which is how traffic-loss SLAs read. *)
let weighted_mean demands avail_per_flow =
  let total = Prete_util.Stats.sum demands in
  if total <= 0.0 then Prete_util.Stats.mean avail_per_flow
  else begin
    let acc = ref 0.0 in
    Array.iteri (fun f a -> acc := !acc +. (demands.(f) *. a)) avail_per_flow;
    !acc /. total
  end

let availability ?pool ?bases env scheme ~scale =
  let pool =
    match pool with Some p -> p | None -> Prete_exec.Pool.default ()
  in
  let demands = Traffic.demand env.traffic ~scale ~epoch:env.epoch in
  let states = degradation_states env in
  (match bases with
  | Some b when Array.length b <> Array.length states ->
    invalid_arg "Availability.availability: bases length <> degradation states"
  | _ -> ());
  let n_flows = Array.length env.ts.Tunnels.flows in
  (* Phase 1: the served-fraction LPs the reactive schemes need, one per
     distinct cut outcome, solved on the pool.  The outcome set is
     collected in state order so the table contents (and the fallback
     below) are independent of how the solves are scheduled. *)
  let served_cache : (int option, float array) Hashtbl.t = Hashtbl.create 32 in
  (match scheme with
  | Schemes.Oracle | Schemes.Flexile ->
    let order = ref [] in
    Array.iter
      (fun (degraded, _) ->
        Array.iter
          (fun (cut, _) ->
            if not (Hashtbl.mem served_cache cut) then begin
              Hashtbl.add served_cache cut [||];
              order := cut :: !order
            end)
          (cut_outcomes env ~degraded))
      states;
    let cut_keys = Array.of_list (List.rev !order) in
    let solved =
      Prete_exec.Pool.parallel_map pool ~chunk:1
        (fun cut ->
          max_served env ~demands
            ~cuts:(match cut with None -> [] | Some f -> [ f ]))
        cut_keys
    in
    Array.iteri (fun i cut -> Hashtbl.replace served_cache cut solved.(i)) cut_keys
  | _ -> ());
  let served cut =
    match Hashtbl.find_opt served_cache cut with
    | Some s -> s
    | None ->
      (* Unreachable for the schemes that call [served]; recompute rather
         than mutate so the table stays read-only during Phase 3. *)
      max_served env ~demands ~cuts:(match cut with None -> [] | Some f -> [ f ])
  in
  (* Phase 2: one plan per degradation state.  Degradation-aware schemes
     re-solve per state — independent LPs, fanned out on the pool; every
     other scheme allocates once. *)
  let plans =
    if Schemes.is_degradation_aware scheme then
      (* Each state's task owns exactly its own slot of [bases]
         (chunk-owned writes), so the caller-held cache stays inside the
         pool's determinism contract; and because warm starts change
         pivot counts but never results, the availability itself is
         independent of whatever bases the cache held. *)
      Prete_exec.Pool.parallel_map pool ~chunk:1
        (fun i ->
          let degraded, _ = states.(i) in
          let warm = match bases with Some b -> b.(i) | None -> None in
          let plan, basis = plan_alloc_warm ?warm env scheme ~demands ~degraded in
          (match bases with Some b -> b.(i) <- basis | None -> ());
          plan)
        (Array.init (Array.length states) Fun.id)
    else begin
      let base = plan_alloc env scheme ~demands ~degraded:None in
      Array.map (fun _ -> base) states
    end
  in
  (* Rate-limited delivery cap of admission schemes. *)
  let admission_cap plan f =
    match plan.p_admitted with None -> demands.(f) | Some b -> b.(f)
  in
  (* Delivered fraction of every flow under a plan and cut outcome:
     availability is the expected fraction of demand served (bandwidth
     availability), which is smooth in the allocation and avoids
     LP-vertex artifacts that a binary per-flow metric suffers from. *)
  let avail_with_reaction plan cut =
    let ts = plan.p_ts and alloc = plan.p_alloc in
    match scheme with
    | Schemes.Ecmp ->
      let losses = ecmp_losses ts demands ~cut in
      Array.map (fun l -> 1.0 -. l) losses
    | _ ->
      Array.init n_flows (fun f ->
          let d = demands.(f) in
          if d <= 0.0 then 1.0
          else
            match scheme with
            | Schemes.Ecmp -> assert false
            | Schemes.Oracle -> (served cut).(f)
            | Schemes.Ffc _ | Schemes.Teavar ->
              (* Ingress rate limiting caps delivery at the admission. *)
              let surv = surviving_rate ts alloc f ~cut in
              Float.min 1.0 (Float.min (admission_cap plan f) surv /. d)
            | Schemes.Smore | Schemes.Prete _ ->
              Float.min 1.0 (surviving_rate ts alloc f ~cut /. d)
            | Schemes.Arrow ->
              (* Restoration-aware TE counts on the optical layer to
                 rebuild lost capacity: flows with traffic on the cut
                 fiber ride out the tau_arrow restoration window, after
                 which the pre-cut allocation is whole again. *)
              let cap = admission_cap plan f in
              if not (flow_affected ts alloc f ~cut) then
                let surv = surviving_rate ts alloc f ~cut in
                Float.min 1.0 (Float.min cap surv /. d)
              else begin
                let w = env.tau_arrow /. env.epoch_seconds in
                let during = Float.min cap (surviving_rate ts alloc f ~cut) /. d in
                let after = Float.min cap (surviving_rate ts alloc f ~cut:None) /. d in
                Float.min 1.0 ((w *. during) +. ((1.0 -. w) *. after))
              end
            | Schemes.Flexile ->
              (* Reactive: traffic on failed tunnels is blackholed until
                 the controller recomputes (the §2.1 convergence loss —
                 "packet loss ... even if the network utilization is
                 quite low"); afterwards the recomputed optimum serves
                 the flow. *)
              let w = env.tau_flexile /. env.epoch_seconds in
              let pre = Float.min 1.0 (surviving_rate ts alloc f ~cut /. d) in
              let post = (served cut).(f) in
              (w *. Float.min pre post) +. ((1.0 -. w) *. post))
  in
  (* Phase 3: per-state availability on the pool.  Each state's inner sum
     runs over its cut outcomes in distribution order, and the cross-state
     sum below folds in state order — both fixed by the model, never by
     the schedule — so the result is bit-identical at any domain count. *)
  let per_state =
    Prete_exec.Pool.parallel_map pool ~chunk:1
      (fun i ->
        let degraded, _ = states.(i) in
        let plan = plans.(i) in
        let outcomes = cut_outcomes env ~degraded in
        let state_avail = ref 0.0 in
        Array.iter
          (fun (cut, p_q) ->
            let per_flow = avail_with_reaction plan cut in
            state_avail := !state_avail +. (p_q *. weighted_mean demands per_flow))
          outcomes;
        !state_avail)
      (Array.init (Array.length states) Fun.id)
  in
  let total = ref 0.0 in
  Array.iteri (fun i (_, p_s) -> total := !total +. (p_s *. per_state.(i))) states;
  !total

let availability_curve ?pool env scheme ~scales =
  Array.map (fun s -> (s, availability ?pool env scheme ~scale:s)) scales

let max_scale_at curve ~target =
  (* Scan for the last crossing above target, interpolating linearly. *)
  let n = Array.length curve in
  if n = 0 then 0.0
  else begin
    let best = ref 0.0 in
    for i = 0 to n - 1 do
      let s, a = curve.(i) in
      if a >= target then best := Float.max !best s;
      if i + 1 < n then begin
        let s1, a1 = curve.(i) and s2, a2 = curve.(i + 1) in
        (* Crossing between samples. *)
        if (a1 >= target && a2 < target) || (a1 < target && a2 >= target) then begin
          let w = (target -. a1) /. (a2 -. a1) in
          let sx = s1 +. (w *. (s2 -. s1)) in
          if a1 >= target then best := Float.max !best sx
        end
      end
    done;
    !best
  end

let nines a =
  if a >= 1.0 then 6.0
  else if a <= 0.0 then 0.0
  else Float.min 6.0 (-.log10 (1.0 -. a))

module Internal = struct
  let plan_alloc = plan_alloc
  let plan_alloc_warm = plan_alloc_warm
  let max_served = max_served
  let degradation_states = degradation_states
  let cut_outcomes = cut_outcomes
end
