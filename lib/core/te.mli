(** The PreTE traffic-allocation optimization (§4.3, Eqns. 2–8).

    Minimize the maximum loss Φ across flows at availability level β:

    {v
      min Φ
      s.t.  Σ_t a_{f,t} L(t,e) ≤ c_e                        ∀e        (3)
            Σ_{t ∈ T_{f,q} ∪ Y_{f,q}} a_{f,t} ≥ (1−l_{f,q}) d_f  ∀f,q (4)
            Σ_q δ_{f,q} p_q ≥ β                              ∀f        (5)
            Φ ≥ l_{f,q} − 1 + δ_{f,q}                        ∀f,q      (6)
            δ binary, 0 ≤ l ≤ 1, a ≥ 0                                (7,8)
    v}

    Scenarios are collapsed into per-flow {!Scenario.Classes} (identical
    surviving-tunnel sets share one l/δ), which keeps instances inside
    dense-simplex reach without changing the optimum.

    Three solution strategies (compared in the [ablate_mip] bench):

    - {!solve}: the production path.  A δ-fixing fixpoint: start with all
      scenario classes covered, solve the LP (with l eliminated —
      equivalent by substitution, see below), then per flow uncover the
      highest-loss classes while keeping Σ δ p ≥ β, and repeat.  A second
      LP maximizes probability-weighted served demand at the optimal Φ so
      spare capacity still protects uncovered scenarios.
    - {!solve_mip}: exact branch-and-bound on the full formulation
      (reference for small instances).
    - {!solve_benders}: Algorithm 2 / Appendix A.4 — subproblem LP with δ
      fixed, optimality cuts from the duals of constraint (6), master MIP.

    l-elimination: for fixed δ, constraint (4) defines the minimal loss
    l = max(0, 1 − Σa/d) and (6) is active only on covered classes, so
    covered classes satisfy Σ_t a_{f,t} + d_f·Φ ≥ d_f and l never needs to
    be materialized.

    {b Anytime semantics.}  Every strategy accepts an optional absolute
    [deadline] (on {!Prete_util.Clock.now}) threaded through to
    {!Prete_lp.Simplex} and {!Prete_lp.Mip}.  Budget expiry does not
    raise once any feasible allocation is known: the strategy stops,
    returns its best incumbent, and sets [degraded = true] on the result
    (the Φ reported is an upper bound, not proven optimal).  Only when
    the budget expires before {e any} feasible point exists does the
    strategy raise {!Prete_lp.Simplex.Timeout}.

    {b Warm starting.}  Every strategy accepts [?warm] (a final basis
    from an earlier, structurally similar solve — e.g. the previous
    controller epoch) and internally threads bases across its own
    iteration structure: δ-fixpoint rounds, branch-and-bound nodes, and
    Benders master/subproblem iterations each reuse the previous basis
    via {!Prete_lp.Simplex}'s exact-reinstall / guided-repair path.
    [?warm_start:false] disables all reuse (the cold baseline the bench
    compares against).  Warm starting changes pivot counts, never
    results.  Per-call telemetry is accumulated in [solution.solver]
    (a {!Prete_lp.Solver_stats.t}). *)

type problem = {
  ts : Prete_net.Tunnels.t;  (** Pre-established ∪ newly-established tunnels. *)
  demands : float array;  (** d_f per flow. *)
  scenarios : Scenario.set;
  beta : float;
}

type stats = { lp_solves : int; lp_pivots : int; mip_nodes : int }

type solution = {
  phi : float;  (** Max loss across flows at level β. *)
  alloc : float array;  (** a_{f,t} indexed by tunnel id. *)
  delta : bool array array;  (** Covered classes, [flow][class]. *)
  classes : Scenario.Classes.cls array array;  (** [flow][class]. *)
  expected_served : float;
      (** Probability- and demand-weighted served fraction (second phase);
          [nan] when the second phase is disabled. *)
  degraded : bool;
      (** [true] when a solve budget expired along the way: [alloc] is
          feasible but [phi] is only an upper bound on the optimum. *)
  stats : stats;
  basis : Prete_lp.Simplex.basis option;
      (** Final basis of the last fixed-δ (or Benders subproblem / MIP
          incumbent) LP; feed back as [?warm] on a later solve of a
          structurally similar problem. *)
  solver : Prete_lp.Solver_stats.t;  (** Per-call solver telemetry. *)
}

exception Infeasible_problem of string

val make_problem :
  ts:Prete_net.Tunnels.t ->
  demands:float array ->
  probs:float array ->
  ?max_order:int ->
  ?cutoff:float ->
  ?normalize:bool ->
  beta:float ->
  unit ->
  problem
(** Convenience constructor: enumerates scenarios from per-fiber failure
    probabilities.  [normalize] (default true) conditions probabilities on
    the truncated scenario space ({!Scenario.normalize}); with it off, a β
    above the scenario set's total mass raises {!Infeasible_problem}.
    Raises [Invalid_argument] on dimension mismatches. *)

val classes_of : problem -> Scenario.Classes.cls array array

val capacity_terms : Prete_net.Tunnels.t -> (int * (int * float) list) list
(** Link-capacity row structure shared by every allocation LP in this
    module (and by {!Availability}/{!Resilience} variants): for each link
    carrying at least one tunnel, in ascending link id, the list of
    (tunnel id, coefficient) terms of constraint (3).  Built once per
    tunnel set through a {!Prete_lp.Sparse} transpose instead of a
    per-link scan over all tunnels. *)

val class_loss : problem -> alloc:float array -> flow:int -> Scenario.Classes.cls -> float
(** Loss of a flow in a scenario class under rate adaptation:
    [max 0 (1 − surviving_alloc / demand)]; 0 for zero-demand flows. *)

val solve :
  ?second_phase:bool ->
  ?max_rounds:int ->
  ?relaxation_start:bool ->
  ?deadline:float ->
  ?warm:Prete_lp.Simplex.basis ->
  ?warm_start:bool ->
  ?engine:Prete_lp.Simplex.engine ->
  ?pricing:Prete_lp.Simplex.pricing ->
  problem ->
  solution
(** The δ-fixpoint heuristic (default strategy).  [second_phase] default
    [true]; [max_rounds] default 8.  [relaxation_start] (default [true])
    adds a second start from an LP-relaxation-guided δ rounding whenever
    the loss-based fixpoint leaves residual loss — it sees cross-flow
    capacity coupling the greedy misses (cf. the Fig. 2 instance) at the
    cost of one larger LP; evaluation sweeps disable it.  When [deadline]
    expires mid-fixpoint the best round so far is returned with
    [degraded = true]; the relaxation start and second phase are skipped
    under an expired budget. *)

type admission = {
  admitted : float array;  (** b_f per flow: the rate-limited admission. *)
  adm_alloc : float array;  (** a_{f,t} by tunnel id. *)
  adm_delta : bool array array;
  adm_classes : Scenario.Classes.cls array array;
  adm_degraded : bool;  (** Analogous to {!solution.degraded}. *)
  adm_stats : stats;
  adm_basis : Prete_lp.Simplex.basis option;
  adm_solver : Prete_lp.Solver_stats.t;
}

val solve_admission :
  ?max_rounds:int ->
  ?skip_unprotectable:bool ->
  ?deadline:float ->
  ?warm:Prete_lp.Simplex.basis ->
  ?warm_start:bool ->
  ?engine:Prete_lp.Simplex.engine ->
  ?pricing:Prete_lp.Simplex.pricing ->
  problem ->
  admission
(** TeaVar/FFC-style admission control: maximize Σ_f b_f subject to
    [b_f ≤ d_f] and lossless delivery of [b_f] in every covered scenario
    class (coverage ≥ β under the problem's probabilities).  Traffic is
    rate-limited to [b_f] at ingress, so a flow whose admission falls
    short of demand is short in {e every} scenario — this is the
    structural difference between the prior proactive schemes and the
    Flexile-style loss formulation PreTE builds on (§2.1, §4.3).
    [skip_unprotectable] (default false) leaves scenario classes with no
    surviving tunnel uncovered from the start — FFC-k's semantics, which
    guarantees losslessness only for failure combinations that leave the
    flow connected. *)

val solve_mip :
  ?deadline:float ->
  ?warm:Prete_lp.Simplex.basis ->
  ?warm_start:bool ->
  ?engine:Prete_lp.Simplex.engine ->
  ?pricing:Prete_lp.Simplex.pricing ->
  problem ->
  solution
(** Exact branch-and-bound over δ (full formulation).  Intended for small
    instances.  Node-budget or deadline exhaustion returns the best
    integral incumbent with [degraded = true] (raises
    {!Prete_lp.Simplex.Timeout} when none exists yet). *)

val solve_benders :
  ?eps:float ->
  ?max_iters:int ->
  ?deadline:float ->
  ?warm:Prete_lp.Simplex.basis ->
  ?warm_start:bool ->
  ?pool:Prete_exec.Pool.t ->
  ?engine:Prete_lp.Simplex.engine ->
  ?pricing:Prete_lp.Simplex.pricing ->
  problem ->
  solution
(** Algorithm 2.  [eps] (default 1e-4) is the UB−LB convergence threshold;
    [max_iters] default 40.  Under deadline pressure the loop stops with
    the best subproblem incumbent ([degraded = true]); a truncated master
    search invalidates the lower bound but its δ is still coverage-feasible
    and is used for one more subproblem pass.

    Per-flow class construction and the per-iteration subproblem LPs run
    on [pool] (default {!Prete_exec.Pool.default}).  Each iteration
    solves the subproblem at up to two coverage-feasible δ candidates —
    the master's proposal plus a greedy re-cover of the incumbent
    allocation — in parallel; every candidate yields a valid incumbent
    and optimality cut, and candidates merge in a fixed order, so the
    result is bit-identical at any domain count (the candidate set never
    depends on the pool). *)
