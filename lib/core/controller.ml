type stage = Detection | Inference | Tunnel_update | Scenario_regen | Te_compute

let stage_name = function
  | Detection -> "detection"
  | Inference -> "NN inference"
  | Tunnel_update -> "tunnel update"
  | Scenario_regen -> "scenario regeneration"
  | Te_compute -> "TE computation"

type timing = { stage : stage; start_s : float; duration_s : float }

type note = {
  note_stage : stage;
  label : string;
  detail : string;
  tries : int;
  backoff_s : float;
}

type report = { timeline : timing list; end_to_end_s : float; notes : note list }

let per_tunnel_setup_s = 0.25

let detection_s = 0.05

let tunnel_update_time n =
  if n < 0 then invalid_arg "Controller.tunnel_update_time: negative count";
  float_of_int n *. per_tunnel_setup_s

let wall f =
  let t0 = Prete_util.Clock.now () in
  let result = f () in
  (result, Prete_util.Clock.elapsed_since t0)

let run ~infer ~regen ~te ~n_new_tunnels () =
  if n_new_tunnels < 0 then invalid_arg "Controller.run: negative tunnel count";
  let (), infer_s = wall infer in
  let update_s = tunnel_update_time n_new_tunnels in
  let (), regen_s = wall regen in
  let te_result, te_s = wall te in
  let stages =
    [
      (Detection, detection_s);
      (Inference, infer_s);
      (Tunnel_update, update_s);
      (Scenario_regen, regen_s);
      (Te_compute, te_s);
    ]
  in
  let _, timeline =
    List.fold_left
      (fun (t, acc) (stage, duration_s) ->
        (t +. duration_s, { stage; start_s = t; duration_s } :: acc))
      (0.0, []) stages
  in
  let timeline = List.rev timeline in
  let end_to_end_s =
    List.fold_left (fun acc t -> acc +. t.duration_s) 0.0 timeline
  in
  (te_result, { timeline; end_to_end_s; notes = [] })

let with_notes report notes = { report with notes = report.notes @ notes }

let within_budget report ~gap_to_cut_s = report.end_to_end_s <= gap_to_cut_s
