type stage = Detection | Inference | Tunnel_update | Scenario_regen | Te_compute

let stage_name = function
  | Detection -> "detection"
  | Inference -> "NN inference"
  | Tunnel_update -> "tunnel update"
  | Scenario_regen -> "scenario regeneration"
  | Te_compute -> "TE computation"

type timing = { stage : stage; start_s : float; duration_s : float }

type note = {
  note_stage : stage;
  label : string;
  detail : string;
  tries : int;
  backoff_s : float;
}

type report = {
  timeline : timing list;
  end_to_end_s : float;
  notes : note list;
  solver : Prete_lp.Solver_stats.t option;
}

let per_tunnel_setup_s = 0.25

let detection_s = 0.05

let tunnel_update_time n =
  if n < 0 then invalid_arg "Controller.tunnel_update_time: negative count";
  float_of_int n *. per_tunnel_setup_s

let per_member_handling_s = 0.002

let batch_latency ~members ~n_new_tunnels =
  if members <= 0 then invalid_arg "Controller.batch_latency: empty batch";
  detection_s
  +. (per_member_handling_s *. float_of_int members)
  +. 0.010 +. 0.25
  +. tunnel_update_time n_new_tunnels

let wall f =
  let t0 = Prete_util.Clock.now () in
  let result = f () in
  (result, Prete_util.Clock.elapsed_since t0)

let run ?solver_stats ~infer ~regen ~te ~n_new_tunnels () =
  if n_new_tunnels < 0 then invalid_arg "Controller.run: negative tunnel count";
  let (), infer_s = wall infer in
  let update_s = tunnel_update_time n_new_tunnels in
  let (), regen_s = wall regen in
  let te_result, te_s = wall te in
  let stages =
    [
      (Detection, detection_s);
      (Inference, infer_s);
      (Tunnel_update, update_s);
      (Scenario_regen, regen_s);
      (Te_compute, te_s);
    ]
  in
  let _, timeline =
    List.fold_left
      (fun (t, acc) (stage, duration_s) ->
        (t +. duration_s, { stage; start_s = t; duration_s } :: acc))
      (0.0, []) stages
  in
  let timeline = List.rev timeline in
  let end_to_end_s =
    List.fold_left (fun acc t -> acc +. t.duration_s) 0.0 timeline
  in
  (match solver_stats with
  | Some st -> Prete_lp.Solver_stats.add_wall st "te_compute" te_s
  | None -> ());
  (te_result, { timeline; end_to_end_s; notes = []; solver = solver_stats })

let with_notes report notes = { report with notes = report.notes @ notes }

let within_budget report ~gap_to_cut_s = report.end_to_end_s <= gap_to_cut_s

(* ------------------------------------------------------------------ *)
(* Per-epoch plan cache                                                 *)
(* ------------------------------------------------------------------ *)

type cache_key = int64

(* FNV-1a folded over the structural content.  [Hashtbl.hash] is unusable
   here: it truncates deep/long structures, so two different demand
   vectors could silently collide by design rather than by accident. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let mix h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime
let mix_f h x = Int64.mul (Int64.logxor h (Int64.bits_of_float x)) fnv_prime

let plan_key ~ts ~demands ?classes ?probs ?(salt = []) () =
  let h = ref fnv_offset in
  let add x = h := mix !h x in
  let addf x = h := mix_f !h x in
  let open Prete_net in
  add (Array.length ts.Tunnels.flows);
  Array.iter
    (fun (f : Tunnels.flow) ->
      add f.Tunnels.flow_id;
      add f.Tunnels.src;
      add f.Tunnels.dst)
    ts.Tunnels.flows;
  add (Array.length ts.Tunnels.tunnels);
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      add tn.Tunnels.tunnel_id;
      add tn.Tunnels.owner;
      List.iter add tn.Tunnels.links;
      add (-1))
    ts.Tunnels.tunnels;
  add (Array.length demands);
  Array.iter addf demands;
  (match classes with
  | None -> add (-2)
  | Some classes ->
    add (Array.length classes);
    Array.iter
      (fun cls ->
        add (Array.length cls);
        Array.iter
          (fun (c : Scenario.Classes.cls) ->
            List.iter add c.Scenario.Classes.survivors;
            add (-3);
            addf c.Scenario.Classes.prob)
          cls)
      classes);
  (match probs with
  | None -> add (-4)
  | Some probs ->
    add (Array.length probs);
    Array.iter addf probs);
  List.iter add salt;
  (* Cached plans are LP vertices: optimal under any engine, but distinct
     engines/pricing rules may land on different degenerate vertices.  Key
     on the session defaults so an A/B engine comparison never silently
     serves one engine's plan to the other's run. *)
  String.iter
    (fun c -> add (Char.code c))
    (Prete_lp.Simplex.engine_name !Prete_lp.Simplex.default_engine);
  String.iter
    (fun c -> add (Char.code c))
    (Prete_lp.Simplex.pricing_name !Prete_lp.Simplex.default_pricing);
  !h

type 'p cache = {
  table : (cache_key, 'p) Hashtbl.t;
  order : cache_key Queue.t;  (* FIFO eviction *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  cache_lock : Mutex.t;
      (* Hashtbl + Queue + counters move together; the lock keeps the
         structure coherent when epochs are sharded across domains. *)
}

let cache ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Controller.cache: capacity must be positive";
  {
    table = Hashtbl.create capacity;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    cache_lock = Mutex.create ();
  }

let cache_guarded c f =
  Mutex.lock c.cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.cache_lock) f

let cache_find c key =
  cache_guarded c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some plan ->
        c.hits <- c.hits + 1;
        Some plan
      | None ->
        c.misses <- c.misses + 1;
        None)

let cache_store c key ~degraded plan =
  (* Degraded plans are deadline truncations, not optima for the keyed
     inputs — caching one would pin a bad plan on every identical future
     epoch, so they are never stored. *)
  if not degraded then
    cache_guarded c (fun () ->
        if not (Hashtbl.mem c.table key) then begin
          Queue.push key c.order;
          if Queue.length c.order > c.capacity then begin
            let victim = Queue.pop c.order in
            Hashtbl.remove c.table victim
          end
        end;
        Hashtbl.replace c.table key plan)

let cache_stats c = cache_guarded c (fun () -> (c.hits, c.misses))
