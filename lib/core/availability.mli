(** Analytic availability evaluation (§6.2).

    An epoch's state is (degradation state s, cut outcome q).  Degradation
    states are truncated to at most one degrading fiber (two simultaneous
    degradations carry negligible probability), cut outcomes to at most one
    cut, both renormalized — the cutoff treatment of TeaVar §5.1.

    For each state the scheme's allocation is evaluated per flow:

    - proactive rate adaptation (ECMP/FFC/TeaVar/PreTE): the flow is
      available in (s, q) iff its surviving allocated rate covers its
      demand (within ε);
    - ARROW: a flow hit by a cut recovers when optical restoration
      completes, losing [tau_arrow] (8 s) of the epoch;
    - Flexile: a flow hit by a cut waits [tau_flexile] for the controller
      to recompute, then receives the recomputed optimal share (losing the
      whole epoch when even that cannot serve it);
    - Oracle: per-outcome optimal allocation.

    Availability = Σ_s P(s) Σ_q P(q|s) · mean over flows of the available
    time fraction.  PreTE's allocation is recomputed per degradation state
    (calibrated probabilities + Algorithm 1 tunnels); every other scheme
    allocates once.

    Ground truth vs. prediction: each fiber gets one representative
    degradation event (deterministically sampled).  The {e evaluation}
    uses the event's true hazard as the conditional cut probability; the
    {e scheme} sees only its predictor's output on the event's features —
    so prediction error directly costs availability (Fig. 15). *)

type env = {
  ts : Prete_net.Tunnels.t;
  traffic : Prete_net.Traffic.t;
  model : Prete_optics.Fiber_model.t;
  beta : float;  (** Optimization availability level (0.999 default). *)
  epoch : int;  (** Hour used for the demand matrix. *)
  degr_events : Prete_optics.Hazard.features array;
      (** Representative degradation event per fiber. *)
  true_hazard : float array;  (** Ground-truth hazard of those events. *)
  epsilon : float;  (** Loss tolerance counting a flow as available. *)
  tau_flexile : float;  (** Reactive convergence window, seconds. *)
  tau_arrow : float;  (** Optical restoration latency, seconds (8). *)
  epoch_seconds : float;  (** 900. *)
}

val make_env :
  ?seed:int ->
  ?beta:float ->
  ?epoch:int ->
  ?epsilon:float ->
  ?tau_flexile:float ->
  ?tau_arrow:float ->
  ?model:Prete_optics.Fiber_model.t ->
  ?traffic:Prete_net.Traffic.t ->
  ?tunnels:Prete_net.Tunnels.t ->
  Prete_net.Topology.t ->
  env
(** Defaults: seed 23, β 0.999 (the cloud-SLA region the paper evaluates,
    §6.2 — at this level the static-probability baselines must cover
    nearly every scenario, which is where prediction pays), epoch 12,
    ε 1e-4, τ_flexile 300 s (a failed flow is not made whole "until the
    next TE period", §7),
    τ_arrow 8 s (§6.1), model/traffic/tunnels generated with their
    defaults. *)

val availability :
  ?pool:Prete_exec.Pool.t ->
  ?bases:Prete_lp.Simplex.basis option array ->
  env ->
  Schemes.t ->
  scale:float ->
  float
(** Mean-over-flows availability at a demand scale, in [0, 1].

    The per-state plans, the reactive schemes' served-fraction LPs, and
    the per-state expectation all evaluate on [pool] (default
    {!Prete_exec.Pool.default}); results are bit-identical at any domain
    count because every sum folds in distribution order.

    [bases] is a caller-owned warm-start cache with one slot per
    degradation state (length {!Internal.degradation_states}; raises
    [Invalid_argument] otherwise): slot [i] is fed as the warm basis of
    state [i]'s plan solve and overwritten with the final basis that
    solve produced.  Repeated calls on the same env with nearby
    probability vectors — the decision-focused training oracle's access
    pattern — then resolve in a handful of pivots instead of cold
    solves.  Only degradation-aware schemes touch the cache; warm starts
    change pivot counts, never results. *)

val availability_curve :
  ?pool:Prete_exec.Pool.t ->
  env ->
  Schemes.t ->
  scales:float array ->
  (float * float) array
(** [(scale, availability)] samples — a Fig. 13 series. *)

val max_scale_at : (float * float) array -> target:float -> float
(** Largest demand scale sustaining [target] availability, interpolated
    linearly on a (monotonically scanned) curve; 0 when even the smallest
    sampled scale misses the target. *)

val nines : float -> float
(** [-log10 (1 - a)], the "number of nines" axis of Figs. 13/15; capped
    at 6 for a = 1. *)

type plan = {
  p_alloc : float array;  (** a_{f,t} by tunnel id. *)
  p_ts : Prete_net.Tunnels.t;  (** Tunnel set (with Algorithm 1 updates). *)
  p_admitted : float array option;
      (** Ingress rate limits (admission-style schemes only). *)
  p_degraded : bool;
      (** A solve budget expired: the allocation is feasible but not
          proven optimal (see the anytime semantics in {!Te}). *)
}

(** Internal pieces exposed for tests, benches, and the resilience /
    fault-injection layers. *)
module Internal : sig
  val plan_alloc :
    ?deadline:float ->
    ?engine:Prete_lp.Simplex.engine ->
    ?pricing:Prete_lp.Simplex.pricing ->
    ?degr_features:Prete_optics.Hazard.features array ->
    env ->
    Schemes.t ->
    demands:float array ->
    degraded:int option ->
    plan
  (** The plan a scheme uses in a given degradation state.  [deadline]
      bounds the underlying solves (anytime semantics, see {!Te});
      [degr_features] overrides the env's representative degradation
      events — the fault-injection harness uses it to feed corrupted
      telemetry to the predictor. *)

  val plan_alloc_warm :
    ?deadline:float ->
    ?warm:Prete_lp.Simplex.basis ->
    ?engine:Prete_lp.Simplex.engine ->
    ?pricing:Prete_lp.Simplex.pricing ->
    ?degr_features:Prete_optics.Hazard.features array ->
    env ->
    Schemes.t ->
    demands:float array ->
    degraded:int option ->
    plan * Prete_lp.Simplex.basis option
  (** Warm-aware variant of {!plan_alloc}: accepts the previous epoch's
      simplex basis and returns the plan together with the basis to carry
      forward.  Only the PreTE scheme consumes/produces a basis today;
      every other scheme ignores [warm] and returns [None].  Built for
      the resilience ladder's [primary] thunk. *)

  val max_served :
    ?engine:Prete_lp.Simplex.engine ->
    ?pricing:Prete_lp.Simplex.pricing ->
    env ->
    demands:float array ->
    cuts:int list ->
    float array
  (** Optimal per-flow served fraction on the topology surviving the given
      fiber cuts — the Oracle/Flexile-recompute LP. *)

  val degradation_states : env -> (int option * float) array
  (** Truncated, renormalized degradation-state distribution. *)

  val cut_outcomes : env -> degraded:int option -> (int option * float) array
  (** Truncated, renormalized conditional cut-outcome distribution. *)
end
