open Prete_net
open Prete_optics

type result = {
  availability : float;
  epochs : int;
  degradation_epochs : int;
  cut_epochs : int;
  multi_cut_epochs : int;
}

(* Surviving allocated rate under a set of simultaneous cuts. *)
let surviving (ts : Tunnels.t) alloc flow ~cuts =
  List.fold_left
    (fun acc tid ->
      let tn = ts.Tunnels.tunnels.(tid) in
      let dead =
        List.exists (fun fb -> Routing.uses_fiber ts.Tunnels.topo tn.Tunnels.links fb) cuts
      in
      if dead then acc else acc +. alloc.(tid))
    0.0 ts.Tunnels.of_flow.(flow)

(* ECMP under a multi-cut: equal split over surviving minimum-cost tunnels
   with proportional throttling on overloaded links (the multi-cut twin of
   the analytic evaluator's model). *)
let ecmp_delivered (ts : Tunnels.t) demands ~cuts =
  let topo = ts.Tunnels.topo in
  let nt = Array.length ts.Tunnels.tunnels in
  let rate = Array.make nt 0.0 in
  let cost tid =
    Routing.path_length_km topo ts.Tunnels.tunnels.(tid).Tunnels.links
    +. (50.0 *. float_of_int (List.length ts.Tunnels.tunnels.(tid).Tunnels.links))
  in
  Array.iteri
    (fun f _ ->
      let d = demands.(f) in
      if d > 0.0 then begin
        let alive =
          List.filter
            (fun tid ->
              not
                (List.exists
                   (fun fb ->
                     Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
                   cuts))
            ts.Tunnels.of_flow.(f)
        in
        let best = List.fold_left (fun acc tid -> Float.min acc (cost tid)) infinity alive in
        let eq = List.filter (fun tid -> cost tid <= best +. 1e-6) alive in
        let n = List.length eq in
        if n > 0 then List.iter (fun tid -> rate.(tid) <- d /. float_of_int n) eq
      end)
    ts.Tunnels.flows;
  let load = Array.make (Topology.num_links topo) 0.0 in
  Array.iteri
    (fun tid r ->
      if r > 0.0 then
        List.iter (fun lid -> load.(lid) <- load.(lid) +. r)
          ts.Tunnels.tunnels.(tid).Tunnels.links)
    rate;
  let factor lid =
    let c = (Topology.link topo lid).Topology.capacity in
    if load.(lid) <= c then 1.0 else c /. load.(lid)
  in
  Array.mapi
    (fun f _ ->
      let d = demands.(f) in
      if d <= 0.0 then 1.0
      else
        let got =
          List.fold_left
            (fun acc tid ->
              let r = rate.(tid) in
              if r <= 0.0 then acc
              else
                acc
                +. r
                   *. List.fold_left
                        (fun b lid -> Float.min b (factor lid))
                        1.0
                        ts.Tunnels.tunnels.(tid).Tunnels.links)
            0.0 ts.Tunnels.of_flow.(f)
        in
        Float.min 1.0 (got /. d))
    ts.Tunnels.flows

(* Delivered fraction of every flow under a plan, a set of true cuts, and
   the scheme's reaction model — shared by the plain run and the chaos
   harness ([served] computes the post-recomputation optimum for the
   reactive schemes). *)
let delivered_fractions (env : Availability.env) scheme ~demands
    ~(plan : Availability.plan) ~cuts ~served =
  let ts = plan.Availability.p_ts and alloc = plan.Availability.p_alloc in
  let topo = env.Availability.ts.Tunnels.topo in
  let cap f =
    match plan.Availability.p_admitted with None -> demands.(f) | Some b -> b.(f)
  in
  match scheme with
  | Schemes.Ecmp -> ecmp_delivered ts demands ~cuts
  | Schemes.Oracle -> served cuts
  | Schemes.Smore | Schemes.Ffc _ | Schemes.Teavar | Schemes.Prete _ ->
    Array.init (Array.length ts.Tunnels.flows) (fun f ->
        let d = demands.(f) in
        if d <= 0.0 then 1.0
        else Float.min 1.0 (Float.min (cap f) (surviving ts alloc f ~cuts) /. d))
  | Schemes.Arrow ->
    Array.init (Array.length ts.Tunnels.flows) (fun f ->
        let d = demands.(f) in
        if d <= 0.0 then 1.0
        else begin
          let affected =
            List.exists
              (fun fb ->
                List.exists
                  (fun tid ->
                    alloc.(tid) > 1e-9
                    && Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
                  ts.Tunnels.of_flow.(f))
              cuts
          in
          if not affected then
            Float.min 1.0 (Float.min (cap f) (surviving ts alloc f ~cuts) /. d)
          else begin
            let w = env.Availability.tau_arrow /. env.Availability.epoch_seconds in
            let during = Float.min (cap f) (surviving ts alloc f ~cuts) /. d in
            let after = Float.min (cap f) (surviving ts alloc f ~cuts:[]) /. d in
            Float.min 1.0 ((w *. during) +. ((1.0 -. w) *. after))
          end
        end)
  | Schemes.Flexile ->
    let post = served cuts in
    Array.init (Array.length ts.Tunnels.flows) (fun f ->
        let d = demands.(f) in
        if d <= 0.0 then 1.0
        else begin
          let w = env.Availability.tau_flexile /. env.Availability.epoch_seconds in
          let pre = Float.min 1.0 (surviving ts alloc f ~cuts /. d) in
          (w *. Float.min pre post.(f)) +. ((1.0 -. w) *. post.(f))
        end)

type epoch_sample = {
  es_state : int option;
  es_cuts : int list;
  es_degraded : (int * Hazard.features) list;
}

(* Sample one epoch's ground truth — which fibers degrade (and with what
   event features), which of those (and which healthy fibers) cut — from
   the epoch's private RNG stream. *)
let sample_epoch_full (env : Availability.env) ~topo ~nf rng =
  let num_fibers = nf in
  let degraded = ref [] in
  let cuts = ref [] in
  for fb = 0 to nf - 1 do
    if Prete_util.Rng.bernoulli rng env.Availability.model.Fiber_model.p_degrade.(fb)
    then begin
      (* Fresh event features; ground truth decides the outcome. *)
      let feats =
        Hazard.sample_features rng ~topo ~fiber:fb ~epoch:(Prete_util.Rng.int rng 96)
      in
      degraded := (fb, feats) :: !degraded;
      if Prete_util.Rng.bernoulli rng (Hazard.eval ~num_fibers feats) then
        cuts := fb :: !cuts
    end
    else if
      Prete_util.Rng.bernoulli rng
        env.Availability.model.Fiber_model.p_unpredictable.(fb)
    then cuts := fb :: !cuts
  done;
  (* At most one degrading fiber is planned for (the first, mirroring the
     truncation the analytic evaluator applies). *)
  let degraded = List.rev !degraded in
  let state = match degraded with [] -> None | (fb, _) :: _ -> Some fb in
  { es_state = state; es_cuts = !cuts; es_degraded = degraded }

let sample_epoch env ~topo ~nf rng =
  let s = sample_epoch_full env ~topo ~nf rng in
  (s.es_state, s.es_cuts, s.es_degraded <> [])

(* One private RNG substream per epoch, split sequentially up front: an
   epoch's draws are then a function of its index alone, so the sample
   path is identical no matter how the epochs are sharded over domains —
   and a [run] of N epochs shares its first k epochs with any other run
   of the same seed. *)
let epoch_streams ~seed ~epochs =
  let master = Prete_util.Rng.create seed in
  Array.init epochs (fun _ -> Prete_util.Rng.split master)

(* Distinct values of [key] over [arr], in first-appearance order (so the
   table construction below is schedule-independent). *)
let distinct_by key arr =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun x ->
      let k = key x in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        order := k :: !order
      end)
    arr;
  Array.of_list (List.rev !order)

(* The served-fraction LPs the reactive schemes replay per epoch: one per
   distinct sorted cut set, solved on the pool, then frozen into a
   read-only table.  Misses (impossible by construction) recompute
   without mutating. *)
let served_table pool (env : Availability.env) scheme ~demands epoch_cuts =
  let tbl : (int list, float array) Hashtbl.t = Hashtbl.create 64 in
  (match scheme with
  | Schemes.Oracle | Schemes.Flexile ->
    let keys = distinct_by (List.sort compare) epoch_cuts in
    let solved =
      Prete_exec.Pool.parallel_map pool ~chunk:1
        (fun key -> Availability.Internal.max_served env ~demands ~cuts:key)
        keys
    in
    Array.iteri (fun i k -> Hashtbl.replace tbl k solved.(i)) keys
  | _ -> ());
  fun cuts ->
    let key = List.sort compare cuts in
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None -> Availability.Internal.max_served env ~demands ~cuts:key

(* Evaluate a drawn sample path against a scheme: one plan per distinct
   degradation state and one served LP per distinct cut set (fanned out
   on the pool, frozen into read-only tables), then a replay of the
   epochs against the tables.  Partial sums live in one slot per chunk
   and fold in chunk order; the chunk size depends only on the epoch
   count, so the float additions associate the same way at any domain
   count.  Shared verbatim by [run] and the streaming runtime (which
   evaluates the same ground truth under different reaction policies —
   instant / as-detected / never — by rewriting [state]). *)
let eval_epochs ?(epoch_plan = fun _ -> None) pool (env : Availability.env)
    scheme ~demands ~state ~epoch_cuts =
  let epochs = Array.length state in
  if epochs = 0 then invalid_arg "Simulate.eval_epochs: no epochs";
  if Array.length epoch_cuts <> epochs then
    invalid_arg "Simulate.eval_epochs: state/cuts length mismatch";
  let total_demand = Float.max 1e-9 (Prete_util.Stats.sum demands) in
  let states = distinct_by Fun.id state in
  let plans =
    Prete_exec.Pool.parallel_map pool ~chunk:1
      (fun degraded -> Availability.Internal.plan_alloc env scheme ~demands ~degraded)
      states
  in
  let plan_tbl : (int option, Availability.plan) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun i s -> Hashtbl.replace plan_tbl s plans.(i)) states;
  let plan s =
    match Hashtbl.find_opt plan_tbl s with
    | Some p -> p
    | None -> Availability.Internal.plan_alloc env scheme ~demands ~degraded:s
  in
  let served = served_table pool env scheme ~demands epoch_cuts in
  let csize = max 1 ((epochs + 63) / 64) in
  let nchunks = (epochs + csize - 1) / csize in
  let partial = Array.make nchunks 0.0 in
  Prete_exec.Pool.parallel_for pool ~chunk:csize epochs (fun lo hi ->
      let acc = ref 0.0 in
      for e = lo to hi - 1 do
        (* A per-epoch override (the runtime's detour-patched plan)
           replaces the state-table plan for that epoch only. *)
        let plan_e =
          match epoch_plan e with Some p -> p | None -> plan state.(e)
        in
        let delivered =
          delivered_fractions env scheme ~demands ~plan:plan_e
            ~cuts:epoch_cuts.(e) ~served
        in
        let epoch_avail = ref 0.0 in
        Array.iteri
          (fun f dl -> epoch_avail := !epoch_avail +. (demands.(f) *. dl))
          delivered;
        acc := !acc +. (!epoch_avail /. total_demand)
      done;
      partial.(lo / csize) <- !acc);
  Array.fold_left ( +. ) 0.0 partial /. float_of_int epochs

(* [eval_epochs] generalized to an epoch-varying demand sequence (a
   traffic model's classes): plans are keyed by (class, degradation
   state), served LPs by (class, sorted cut set), and each epoch is
   normalized by its own class's total demand.  [class_of] must be a
   pure function of the epoch index — the tables, the chunking, and the
   fold order then depend only on the inputs, so the result is
   bit-identical at any domain count.  Kept separate from [eval_epochs]
   so the single-matrix path's float associativity is untouched. *)
let eval_epochs_classes ?(epoch_plan = fun _ -> None) pool
    (env : Availability.env) scheme ~class_demands ~class_of ~state ~epoch_cuts =
  let epochs = Array.length state in
  if epochs = 0 then invalid_arg "Simulate.eval_epochs_classes: no epochs";
  if Array.length epoch_cuts <> epochs then
    invalid_arg "Simulate.eval_epochs_classes: state/cuts length mismatch";
  let nclasses = Array.length class_demands in
  if nclasses = 0 then invalid_arg "Simulate.eval_epochs_classes: no classes";
  let classes = Array.init epochs class_of in
  Array.iter
    (fun c ->
      if c < 0 || c >= nclasses then
        invalid_arg "Simulate.eval_epochs_classes: class out of range")
    classes;
  let totals =
    Array.map (fun d -> Float.max 1e-9 (Prete_util.Stats.sum d)) class_demands
  in
  let plan_keys =
    distinct_by Fun.id (Array.init epochs (fun e -> (classes.(e), state.(e))))
  in
  let plans =
    Prete_exec.Pool.parallel_map pool ~chunk:1
      (fun (c, degraded) ->
        Availability.Internal.plan_alloc env scheme ~demands:class_demands.(c)
          ~degraded)
      plan_keys
  in
  let plan_tbl : (int * int option, Availability.plan) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri (fun i k -> Hashtbl.replace plan_tbl k plans.(i)) plan_keys;
  let plan c s =
    match Hashtbl.find_opt plan_tbl (c, s) with
    | Some p -> p
    | None ->
      Availability.Internal.plan_alloc env scheme ~demands:class_demands.(c)
        ~degraded:s
  in
  let served_tbl : (int * int list, float array) Hashtbl.t = Hashtbl.create 64 in
  (match scheme with
  | Schemes.Oracle | Schemes.Flexile ->
    let keys =
      distinct_by Fun.id
        (Array.init epochs (fun e -> (classes.(e), List.sort compare epoch_cuts.(e))))
    in
    let solved =
      Prete_exec.Pool.parallel_map pool ~chunk:1
        (fun (c, key) ->
          Availability.Internal.max_served env ~demands:class_demands.(c) ~cuts:key)
        keys
    in
    Array.iteri (fun i k -> Hashtbl.replace served_tbl k solved.(i)) keys
  | _ -> ());
  let served c cuts =
    let key = List.sort compare cuts in
    match Hashtbl.find_opt served_tbl (c, key) with
    | Some s -> s
    | None -> Availability.Internal.max_served env ~demands:class_demands.(c) ~cuts:key
  in
  let csize = max 1 ((epochs + 63) / 64) in
  let nchunks = (epochs + csize - 1) / csize in
  let partial = Array.make nchunks 0.0 in
  Prete_exec.Pool.parallel_for pool ~chunk:csize epochs (fun lo hi ->
      let acc = ref 0.0 in
      for e = lo to hi - 1 do
        let c = classes.(e) in
        let demands = class_demands.(c) in
        let plan_e =
          match epoch_plan e with Some p -> p | None -> plan c state.(e)
        in
        let delivered =
          delivered_fractions env scheme ~demands ~plan:plan_e
            ~cuts:epoch_cuts.(e) ~served:(served c)
        in
        let epoch_avail = ref 0.0 in
        Array.iteri
          (fun f dl -> epoch_avail := !epoch_avail +. (demands.(f) *. dl))
          delivered;
        acc := !acc +. (!epoch_avail /. totals.(c))
      done;
      partial.(lo / csize) <- !acc);
  Array.fold_left ( +. ) 0.0 partial /. float_of_int epochs

let run ?(seed = 123) ?(epochs = 20_000) ?pool (env : Availability.env) scheme
    ~scale =
  if epochs <= 0 then invalid_arg "Simulate.run: epochs must be positive";
  let pool =
    match pool with Some p -> p | None -> Prete_exec.Pool.default ()
  in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  (* Phase A: sample every epoch's ground truth on the pool.  Each epoch
     writes only its own slots, from its own pre-split stream. *)
  let epoch_rngs = epoch_streams ~seed ~epochs in
  let state = Array.make epochs None in
  let epoch_cuts = Array.make epochs [] in
  let had_degr = Array.make epochs false in
  Prete_exec.Pool.parallel_for pool epochs (fun lo hi ->
      for e = lo to hi - 1 do
        let s, cuts, degr = sample_epoch env ~topo ~nf epoch_rngs.(e) in
        state.(e) <- s;
        epoch_cuts.(e) <- cuts;
        had_degr.(e) <- degr
      done);
  let degr_epochs = ref 0 and cut_epochs = ref 0 and multi = ref 0 in
  Array.iter (fun d -> if d then incr degr_epochs) had_degr;
  Array.iter
    (fun cuts ->
      if cuts <> [] then incr cut_epochs;
      if List.length cuts > 1 then incr multi)
    epoch_cuts;
  (* Phases B and C: plan/served tables plus the epoch replay. *)
  {
    availability = eval_epochs pool env scheme ~demands ~state ~epoch_cuts;
    epochs;
    degradation_epochs = !degr_epochs;
    cut_epochs = !cut_epochs;
    multi_cut_epochs = !multi;
  }

(* [run] with an epoch-varying traffic model: the ground truth is drawn
   exactly as [run] draws it (same seed ⇒ same sample path), but each
   epoch is evaluated against the demand class its schedule selects.
   The env must be built over the model ([Availability.make_env
   ~traffic:(Traffic_model.to_traffic tm) ~tunnels:...]) so tunnels and
   flows line up. *)
let run_model ?(seed = 123) ?(epochs = 20_000) ?pool (env : Availability.env)
    (tm : Traffic_model.t) scheme ~scale =
  if epochs <= 0 then invalid_arg "Simulate.run_model: epochs must be positive";
  let pool =
    match pool with Some p -> p | None -> Prete_exec.Pool.default ()
  in
  let nflows = Array.length env.Availability.ts.Tunnels.flows in
  if Traffic_model.num_flows tm <> nflows then
    invalid_arg "Simulate.run_model: env tunnels do not match the traffic model";
  let class_demands =
    Array.map (Array.map (fun d -> d *. scale)) tm.Traffic_model.tm_classes
  in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  let epoch_rngs = epoch_streams ~seed ~epochs in
  let state = Array.make epochs None in
  let epoch_cuts = Array.make epochs [] in
  let had_degr = Array.make epochs false in
  Prete_exec.Pool.parallel_for pool epochs (fun lo hi ->
      for e = lo to hi - 1 do
        let s, cuts, degr = sample_epoch env ~topo ~nf epoch_rngs.(e) in
        state.(e) <- s;
        epoch_cuts.(e) <- cuts;
        had_degr.(e) <- degr
      done);
  let degr_epochs = ref 0 and cut_epochs = ref 0 and multi = ref 0 in
  Array.iter (fun d -> if d then incr degr_epochs) had_degr;
  Array.iter
    (fun cuts ->
      if cuts <> [] then incr cut_epochs;
      if List.length cuts > 1 then incr multi)
    epoch_cuts;
  {
    availability =
      eval_epochs_classes pool env scheme ~class_demands
        ~class_of:(Traffic_model.class_of tm) ~state ~epoch_cuts;
    epochs;
    degradation_epochs = !degr_epochs;
    cut_epochs = !cut_epochs;
    multi_cut_epochs = !multi;
  }

(* --------------------------------------------------------------------- *)
(* Chaos harness                                                           *)
(* --------------------------------------------------------------------- *)

type chaos_result = {
  c_availability : float;
  c_epochs : int;
  c_detour : int;
  c_primary : int;
  c_cached : int;
  c_equal_split : int;
  c_gap_epochs : int;
  c_fault_epochs : int;
  c_degraded_plans : int;
  c_causes : (string * int) list;
  c_cache_hits : int;
  c_cache_misses : int;
}

(* Epochs are evaluated in fixed-size shards; each shard owns a private
   fallback ladder and plan cache, so retained state (last-good plan,
   rung-0 basis, cached outcomes) flows between epochs of a shard but
   never across shards.  The shard size depends only on the epoch count —
   never on the domain count — which is what makes chaos results
   bit-identical whether the shards run sequentially or spread over a
   pool. *)
let chaos_shard_epochs = 50

let run_chaos ?(seed = 123) ?(epochs = 400) ?(faults = []) ?(fault_seed = 77)
    ?(pressure_budget_s = 0.0) ?detours ?pool (env : Availability.env) scheme
    ~scale =
  if epochs <= 0 then invalid_arg "Simulate.run_chaos: epochs must be positive";
  let pool =
    match pool with Some p -> p | None -> Prete_exec.Pool.default ()
  in
  (* The epoch sample path below is drawn exactly as [run] draws it; the
     injector draws only from its private stream (one substream per
     epoch), so the availability delta between fault settings is
     attributable to the faults alone. *)
  let epoch_rngs = epoch_streams ~seed ~epochs in
  let master_inj = Faults.injector ~seed:fault_seed ~pressure_budget_s faults in
  let epoch_injs = Array.init epochs (fun _ -> Faults.substream master_inj) in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let total_demand = Float.max 1e-9 (Prete_util.Stats.sum demands) in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  (* With the detour tier armed, the installed plan its patches apply to
     is the standing (no-degradation) allocation — one deterministic
     solve shared by every shard, computed before the control loop. *)
  let detour_installed =
    match detours with
    | None -> None
    | Some dt ->
      Some (dt, Availability.Internal.plan_alloc env scheme ~demands ~degraded:None)
  in
  let plan_for ~ladder ~plan_cache (obs : Faults.observation) =
    let detour =
      match (detour_installed, obs.Faults.seen) with
      | Some (dt, installed), Some fb when not obs.Faults.gap ->
        Some (dt, installed, fb)
      | _ -> None
    in
    let compute () =
      let deadline =
        Option.map Prete_util.Clock.deadline_after obs.Faults.budget_s
      in
      let primary ~warm () =
        Availability.Internal.plan_alloc_warm ?deadline ?warm
          ~degr_features:obs.Faults.features env scheme ~demands
          ~degraded:obs.Faults.seen
      in
      let te () =
        Resilience.plan_epoch ladder ~ts:env.Availability.ts ~demands
          ~telemetry_gap:obs.Faults.gap ?detour ~primary ()
      in
      (* Drive the full pipeline so chaos exercises the same entry point
         production would use; the report carries the ladder's notes. *)
      let outcome, report =
        Controller.run ~infer:(fun () -> ()) ~regen:(fun () -> ()) ~te
          ~n_new_tunnels:0 ()
      in
      ignore (Controller.with_notes report (Resilience.notes outcome));
      outcome
    in
    (* Ladder outcomes cached in the shard's structural plan cache —
       keyed by (tunnels, demands, fiber probabilities, observed state) —
       but only for clean observations: corrupted features, gaps, and
       injected budgets make an epoch's plan non-reusable, and degraded
       plans are refused by the cache itself. *)
    let cacheable =
      (not (Faults.corrupts_features obs))
      && obs.Faults.budget_s = None
      && not obs.Faults.gap
    in
    if not cacheable then compute ()
    else begin
      let key =
        Controller.plan_key ~ts:env.Availability.ts ~demands
          ~probs:env.Availability.model.Fiber_model.p_cut
          ~salt:[ (match obs.Faults.seen with None -> -1 | Some fb -> fb) ]
          ()
      in
      match Controller.cache_find plan_cache key with
      | Some o -> o
      | None ->
        let o = compute () in
        Controller.cache_store plan_cache key ~degraded:(Resilience.degraded o) o;
        o
    end
  in
  (* Phase A: sample every epoch's ground truth and pass it through the
     fault injector, on the pool.  Each epoch draws only from its own
     pre-split streams. *)
  let state = Array.make epochs None in
  let epoch_cuts = Array.make epochs [] in
  let obs_arr = Array.make epochs None in
  Prete_exec.Pool.parallel_for pool epochs (fun lo hi ->
      for e = lo to hi - 1 do
        let s, cuts, _ = sample_epoch env ~topo ~nf epoch_rngs.(e) in
        state.(e) <- s;
        epoch_cuts.(e) <- cuts;
        obs_arr.(e) <-
          Some
            (Faults.observe epoch_injs.(e) ~topo ~true_state:s
               ~events:env.Availability.degr_events)
      done);
  let obs_arr =
    Array.map (function Some o -> o | None -> assert false) obs_arr
  in
  let served = served_table pool env scheme ~demands epoch_cuts in
  (* Phase B: drive the control loop over fixed-size shards, each with a
     private ladder and plan cache (see [chaos_shard_epochs]); per-shard
     tallies merge in shard order. *)
  let csize = chaos_shard_epochs in
  let nchunks = (epochs + csize - 1) / csize in
  let sh_acc = Array.make nchunks 0.0 in
  let sh_detour = Array.make nchunks 0 in
  let sh_primary = Array.make nchunks 0 in
  let sh_cached = Array.make nchunks 0 in
  let sh_equal = Array.make nchunks 0 in
  let sh_gaps = Array.make nchunks 0 in
  let sh_faults = Array.make nchunks 0 in
  let sh_degr = Array.make nchunks 0 in
  let sh_hits = Array.make nchunks 0 in
  let sh_misses = Array.make nchunks 0 in
  let sh_causes = Array.init nchunks (fun _ -> Hashtbl.create 8) in
  Prete_exec.Pool.parallel_for pool ~chunk:csize epochs (fun lo hi ->
      let c = lo / csize in
      let ladder = Resilience.create () in
      let plan_cache : Resilience.outcome Controller.cache =
        Controller.cache ~capacity:128 ()
      in
      let causes = sh_causes.(c) in
      let acc = ref 0.0 in
      for e = lo to hi - 1 do
        let obs = obs_arr.(e) in
        if obs.Faults.gap then sh_gaps.(c) <- sh_gaps.(c) + 1;
        if obs.Faults.fired <> [] then sh_faults.(c) <- sh_faults.(c) + 1;
        let outcome = plan_for ~ladder ~plan_cache obs in
        (match outcome.Resilience.rung with
        | Resilience.Detour -> sh_detour.(c) <- sh_detour.(c) + 1
        | Resilience.Primary -> sh_primary.(c) <- sh_primary.(c) + 1
        | Resilience.Cached -> sh_cached.(c) <- sh_cached.(c) + 1
        | Resilience.Equal_split -> sh_equal.(c) <- sh_equal.(c) + 1);
        if Resilience.degraded outcome then sh_degr.(c) <- sh_degr.(c) + 1;
        (match outcome.Resilience.cause with
        | None -> ()
        | Some cause ->
          let name = Resilience.cause_name cause in
          Hashtbl.replace causes name
            (1 + Option.value ~default:0 (Hashtbl.find_opt causes name)));
        let delivered =
          delivered_fractions env scheme ~demands ~plan:outcome.Resilience.plan
            ~cuts:epoch_cuts.(e) ~served
        in
        let epoch_avail = ref 0.0 in
        Array.iteri
          (fun f dl -> epoch_avail := !epoch_avail +. (demands.(f) *. dl))
          delivered;
        acc := !acc +. (!epoch_avail /. total_demand)
      done;
      sh_acc.(c) <- !acc;
      let h, m = Controller.cache_stats plan_cache in
      sh_hits.(c) <- h;
      sh_misses.(c) <- m);
  let sum a = Array.fold_left ( + ) 0 a in
  let causes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (Hashtbl.iter (fun name n ->
         Hashtbl.replace causes name
           (n + Option.value ~default:0 (Hashtbl.find_opt causes name))))
    sh_causes;
  {
    c_availability = Array.fold_left ( +. ) 0.0 sh_acc /. float_of_int epochs;
    c_epochs = epochs;
    c_detour = sum sh_detour;
    c_primary = sum sh_primary;
    c_cached = sum sh_cached;
    c_equal_split = sum sh_equal;
    c_gap_epochs = sum sh_gaps;
    c_fault_epochs = sum sh_faults;
    c_degraded_plans = sum sh_degr;
    c_causes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) causes []);
    c_cache_hits = sum sh_hits;
    c_cache_misses = sum sh_misses;
  }

type sweep_entry = {
  sw_class : Faults.class_;
  sw_result : chaos_result;
  sw_delta : float;  (** Availability vs the fault-free baseline. *)
}

module Internal = struct
  type nonrec epoch_sample = epoch_sample = {
    es_state : int option;
    es_cuts : int list;
    es_degraded : (int * Hazard.features) list;
  }

  let epoch_streams = epoch_streams

  let sample_epoch (env : Availability.env) rng =
    let topo = env.Availability.ts.Tunnels.topo in
    sample_epoch_full env ~topo ~nf:(Topology.num_fibers topo) rng

  let eval_epochs ?epoch_plan pool env scheme ~demands ~state ~epoch_cuts =
    eval_epochs ?epoch_plan pool env scheme ~demands ~state ~epoch_cuts

  let eval_epochs_classes ?epoch_plan pool env scheme ~class_demands ~class_of
      ~state ~epoch_cuts =
    eval_epochs_classes ?epoch_plan pool env scheme ~class_demands ~class_of
      ~state ~epoch_cuts
end

let chaos_sweep ?seed ?epochs ?fault_seed ?pressure_budget_s ?detours ?pool
    (env : Availability.env) scheme ~scale =
  let baseline =
    run_chaos ?seed ?epochs ~faults:[] ?detours ?pool env scheme ~scale
  in
  let entries =
    Array.map
      (fun c ->
        let r =
          run_chaos ?seed ?epochs ?fault_seed ?pressure_budget_s ?detours ?pool
            ~faults:[ { Faults.fault = c; rate = Faults.default_rate c } ]
            env scheme ~scale
        in
        {
          sw_class = c;
          sw_result = r;
          sw_delta = r.c_availability -. baseline.c_availability;
        })
      Faults.all_classes
  in
  (baseline, entries)
