open Prete_net
open Prete_optics

type result = {
  availability : float;
  epochs : int;
  degradation_epochs : int;
  cut_epochs : int;
  multi_cut_epochs : int;
}

(* Surviving allocated rate under a set of simultaneous cuts. *)
let surviving (ts : Tunnels.t) alloc flow ~cuts =
  List.fold_left
    (fun acc tid ->
      let tn = ts.Tunnels.tunnels.(tid) in
      let dead =
        List.exists (fun fb -> Routing.uses_fiber ts.Tunnels.topo tn.Tunnels.links fb) cuts
      in
      if dead then acc else acc +. alloc.(tid))
    0.0 ts.Tunnels.of_flow.(flow)

(* ECMP under a multi-cut: equal split over surviving minimum-cost tunnels
   with proportional throttling on overloaded links (the multi-cut twin of
   the analytic evaluator's model). *)
let ecmp_delivered (ts : Tunnels.t) demands ~cuts =
  let topo = ts.Tunnels.topo in
  let nt = Array.length ts.Tunnels.tunnels in
  let rate = Array.make nt 0.0 in
  let cost tid =
    Routing.path_length_km topo ts.Tunnels.tunnels.(tid).Tunnels.links
    +. (50.0 *. float_of_int (List.length ts.Tunnels.tunnels.(tid).Tunnels.links))
  in
  Array.iteri
    (fun f _ ->
      let d = demands.(f) in
      if d > 0.0 then begin
        let alive =
          List.filter
            (fun tid ->
              not
                (List.exists
                   (fun fb ->
                     Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
                   cuts))
            ts.Tunnels.of_flow.(f)
        in
        let best = List.fold_left (fun acc tid -> Float.min acc (cost tid)) infinity alive in
        let eq = List.filter (fun tid -> cost tid <= best +. 1e-6) alive in
        let n = List.length eq in
        if n > 0 then List.iter (fun tid -> rate.(tid) <- d /. float_of_int n) eq
      end)
    ts.Tunnels.flows;
  let load = Array.make (Topology.num_links topo) 0.0 in
  Array.iteri
    (fun tid r ->
      if r > 0.0 then
        List.iter (fun lid -> load.(lid) <- load.(lid) +. r)
          ts.Tunnels.tunnels.(tid).Tunnels.links)
    rate;
  let factor lid =
    let c = (Topology.link topo lid).Topology.capacity in
    if load.(lid) <= c then 1.0 else c /. load.(lid)
  in
  Array.mapi
    (fun f _ ->
      let d = demands.(f) in
      if d <= 0.0 then 1.0
      else
        let got =
          List.fold_left
            (fun acc tid ->
              let r = rate.(tid) in
              if r <= 0.0 then acc
              else
                acc
                +. r
                   *. List.fold_left
                        (fun b lid -> Float.min b (factor lid))
                        1.0
                        ts.Tunnels.tunnels.(tid).Tunnels.links)
            0.0 ts.Tunnels.of_flow.(f)
        in
        Float.min 1.0 (got /. d))
    ts.Tunnels.flows

(* Delivered fraction of every flow under a plan, a set of true cuts, and
   the scheme's reaction model — shared by the plain run and the chaos
   harness ([served] computes the post-recomputation optimum for the
   reactive schemes). *)
let delivered_fractions (env : Availability.env) scheme ~demands
    ~(plan : Availability.plan) ~cuts ~served =
  let ts = plan.Availability.p_ts and alloc = plan.Availability.p_alloc in
  let topo = env.Availability.ts.Tunnels.topo in
  let cap f =
    match plan.Availability.p_admitted with None -> demands.(f) | Some b -> b.(f)
  in
  match scheme with
  | Schemes.Ecmp -> ecmp_delivered ts demands ~cuts
  | Schemes.Oracle -> served cuts
  | Schemes.Smore | Schemes.Ffc _ | Schemes.Teavar | Schemes.Prete _ ->
    Array.init (Array.length ts.Tunnels.flows) (fun f ->
        let d = demands.(f) in
        if d <= 0.0 then 1.0
        else Float.min 1.0 (Float.min (cap f) (surviving ts alloc f ~cuts) /. d))
  | Schemes.Arrow ->
    Array.init (Array.length ts.Tunnels.flows) (fun f ->
        let d = demands.(f) in
        if d <= 0.0 then 1.0
        else begin
          let affected =
            List.exists
              (fun fb ->
                List.exists
                  (fun tid ->
                    alloc.(tid) > 1e-9
                    && Routing.uses_fiber topo ts.Tunnels.tunnels.(tid).Tunnels.links fb)
                  ts.Tunnels.of_flow.(f))
              cuts
          in
          if not affected then
            Float.min 1.0 (Float.min (cap f) (surviving ts alloc f ~cuts) /. d)
          else begin
            let w = env.Availability.tau_arrow /. env.Availability.epoch_seconds in
            let during = Float.min (cap f) (surviving ts alloc f ~cuts) /. d in
            let after = Float.min (cap f) (surviving ts alloc f ~cuts:[]) /. d in
            Float.min 1.0 ((w *. during) +. ((1.0 -. w) *. after))
          end
        end)
  | Schemes.Flexile ->
    let post = served cuts in
    Array.init (Array.length ts.Tunnels.flows) (fun f ->
        let d = demands.(f) in
        if d <= 0.0 then 1.0
        else begin
          let w = env.Availability.tau_flexile /. env.Availability.epoch_seconds in
          let pre = Float.min 1.0 (surviving ts alloc f ~cuts /. d) in
          (w *. Float.min pre post.(f)) +. ((1.0 -. w) *. post.(f))
        end)

let run ?(seed = 123) ?(epochs = 20_000) (env : Availability.env) scheme ~scale =
  if epochs <= 0 then invalid_arg "Simulate.run: epochs must be positive";
  let rng = Prete_util.Rng.create seed in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let total_demand = Float.max 1e-9 (Prete_util.Stats.sum demands) in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  let num_fibers = nf in
  (* Plans cached per degradation state (at most one degrading fiber is
     planned for; extra simultaneous degradations keep the first plan,
     mirroring the truncation the analytic evaluator applies). *)
  let plan_cache : (int option, Availability.plan) Hashtbl.t = Hashtbl.create 64 in
  let plan degraded =
    match Hashtbl.find_opt plan_cache degraded with
    | Some p -> p
    | None ->
      let p = Availability.Internal.plan_alloc env scheme ~demands ~degraded in
      Hashtbl.add plan_cache degraded p;
      p
  in
  let served_cache : (int list, float array) Hashtbl.t = Hashtbl.create 64 in
  let served cuts =
    let key = List.sort compare cuts in
    match Hashtbl.find_opt served_cache key with
    | Some s -> s
    | None ->
      let s = Availability.Internal.max_served env ~demands ~cuts:key in
      Hashtbl.add served_cache key s;
      s
  in
  let acc = ref 0.0 in
  let degr_epochs = ref 0 and cut_epochs = ref 0 and multi = ref 0 in
  for _ = 1 to epochs do
    (* Sample the epoch's degradations and cuts. *)
    let degraded = ref [] in
    let cuts = ref [] in
    for fb = 0 to nf - 1 do
      if Prete_util.Rng.bernoulli rng env.Availability.model.Fiber_model.p_degrade.(fb)
      then begin
        degraded := fb :: !degraded;
        (* Fresh event features; ground truth decides the outcome. *)
        let feats = Hazard.sample_features rng ~topo ~fiber:fb ~epoch:(Prete_util.Rng.int rng 96) in
        if Prete_util.Rng.bernoulli rng (Hazard.eval ~num_fibers feats) then
          cuts := fb :: !cuts
      end
      else if
        Prete_util.Rng.bernoulli rng
          env.Availability.model.Fiber_model.p_unpredictable.(fb)
      then cuts := fb :: !cuts
    done;
    if !degraded <> [] then incr degr_epochs;
    if !cuts <> [] then incr cut_epochs;
    if List.length !cuts > 1 then incr multi;
    let state = match List.rev !degraded with [] -> None | fb :: _ -> Some fb in
    let p = plan state in
    let cuts = !cuts in
    let delivered = delivered_fractions env scheme ~demands ~plan:p ~cuts ~served in
    let epoch_avail = ref 0.0 in
    Array.iteri (fun f dl -> epoch_avail := !epoch_avail +. (demands.(f) *. dl)) delivered;
    acc := !acc +. (!epoch_avail /. total_demand)
  done;
  {
    availability = !acc /. float_of_int epochs;
    epochs;
    degradation_epochs = !degr_epochs;
    cut_epochs = !cut_epochs;
    multi_cut_epochs = !multi;
  }

(* --------------------------------------------------------------------- *)
(* Chaos harness                                                           *)
(* --------------------------------------------------------------------- *)

type chaos_result = {
  c_availability : float;
  c_epochs : int;
  c_primary : int;
  c_cached : int;
  c_equal_split : int;
  c_gap_epochs : int;
  c_fault_epochs : int;
  c_degraded_plans : int;
  c_causes : (string * int) list;
  c_cache_hits : int;
  c_cache_misses : int;
}

let run_chaos ?(seed = 123) ?(epochs = 400) ?(faults = []) ?(fault_seed = 77)
    ?(pressure_budget_s = 0.0) (env : Availability.env) scheme ~scale =
  if epochs <= 0 then invalid_arg "Simulate.run_chaos: epochs must be positive";
  (* The epoch sample path below draws from [rng] exactly as [run] does;
     the injector draws only from its private stream, so the availability
     delta between fault settings is attributable to the faults alone. *)
  let rng = Prete_util.Rng.create seed in
  let inj = Faults.injector ~seed:fault_seed ~pressure_budget_s faults in
  let ladder = Resilience.create () in
  let demands =
    Traffic.demand env.Availability.traffic ~scale ~epoch:env.Availability.epoch
  in
  let total_demand = Float.max 1e-9 (Prete_util.Stats.sum demands) in
  let topo = env.Availability.ts.Tunnels.topo in
  let nf = Topology.num_fibers topo in
  let num_fibers = nf in
  (* Ladder outcomes cached in the controller's structural plan cache —
     keyed by (tunnels, demands, fiber probabilities, observed state) —
     but only for clean observations: corrupted features, gaps, and
     injected budgets make an epoch's plan non-reusable, and degraded
     plans are refused by the cache itself. *)
  let plan_cache : Resilience.outcome Controller.cache =
    Controller.cache ~capacity:128 ()
  in
  let served_cache : (int list, float array) Hashtbl.t = Hashtbl.create 64 in
  let served cuts =
    let key = List.sort compare cuts in
    match Hashtbl.find_opt served_cache key with
    | Some s -> s
    | None ->
      let s = Availability.Internal.max_served env ~demands ~cuts:key in
      Hashtbl.add served_cache key s;
      s
  in
  let plan_for (obs : Faults.observation) =
    let compute () =
      let deadline =
        Option.map Prete_util.Clock.deadline_after obs.Faults.budget_s
      in
      let primary ~warm () =
        Availability.Internal.plan_alloc_warm ?deadline ?warm
          ~degr_features:obs.Faults.features env scheme ~demands
          ~degraded:obs.Faults.seen
      in
      let te () =
        Resilience.plan_epoch ladder ~ts:env.Availability.ts ~demands
          ~telemetry_gap:obs.Faults.gap ~primary ()
      in
      (* Drive the full pipeline so chaos exercises the same entry point
         production would use; the report carries the ladder's notes. *)
      let outcome, report =
        Controller.run ~infer:(fun () -> ()) ~regen:(fun () -> ()) ~te
          ~n_new_tunnels:0 ()
      in
      ignore (Controller.with_notes report (Resilience.notes outcome));
      outcome
    in
    let cacheable =
      (not (Faults.corrupts_features obs))
      && obs.Faults.budget_s = None
      && not obs.Faults.gap
    in
    if not cacheable then compute ()
    else begin
      let key =
        Controller.plan_key ~ts:env.Availability.ts ~demands
          ~probs:env.Availability.model.Fiber_model.p_cut
          ~salt:[ (match obs.Faults.seen with None -> -1 | Some fb -> fb) ]
          ()
      in
      match Controller.cache_find plan_cache key with
      | Some o -> o
      | None ->
        let o = compute () in
        Controller.cache_store plan_cache key ~degraded:(Resilience.degraded o) o;
        o
    end
  in
  let acc = ref 0.0 in
  let primary = ref 0 and cached = ref 0 and equal = ref 0 in
  let gaps = ref 0 and fault_epochs = ref 0 and degr_plans = ref 0 in
  let causes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  for _ = 1 to epochs do
    let degraded = ref [] in
    let cuts = ref [] in
    for fb = 0 to nf - 1 do
      if Prete_util.Rng.bernoulli rng env.Availability.model.Fiber_model.p_degrade.(fb)
      then begin
        degraded := fb :: !degraded;
        let feats =
          Hazard.sample_features rng ~topo ~fiber:fb ~epoch:(Prete_util.Rng.int rng 96)
        in
        if Prete_util.Rng.bernoulli rng (Hazard.eval ~num_fibers feats) then
          cuts := fb :: !cuts
      end
      else if
        Prete_util.Rng.bernoulli rng
          env.Availability.model.Fiber_model.p_unpredictable.(fb)
      then cuts := fb :: !cuts
    done;
    let state = match List.rev !degraded with [] -> None | fb :: _ -> Some fb in
    let obs =
      Faults.observe inj ~topo ~true_state:state
        ~events:env.Availability.degr_events
    in
    if obs.Faults.gap then incr gaps;
    if obs.Faults.fired <> [] then incr fault_epochs;
    let outcome = plan_for obs in
    (match outcome.Resilience.rung with
    | Resilience.Primary -> incr primary
    | Resilience.Cached -> incr cached
    | Resilience.Equal_split -> incr equal);
    if Resilience.degraded outcome then incr degr_plans;
    (match outcome.Resilience.cause with
    | None -> ()
    | Some c ->
      let name = Resilience.cause_name c in
      Hashtbl.replace causes name
        (1 + Option.value ~default:0 (Hashtbl.find_opt causes name)));
    let delivered =
      delivered_fractions env scheme ~demands ~plan:outcome.Resilience.plan
        ~cuts:!cuts ~served
    in
    let epoch_avail = ref 0.0 in
    Array.iteri
      (fun f dl -> epoch_avail := !epoch_avail +. (demands.(f) *. dl))
      delivered;
    acc := !acc +. (!epoch_avail /. total_demand)
  done;
  {
    c_availability = !acc /. float_of_int epochs;
    c_epochs = epochs;
    c_primary = !primary;
    c_cached = !cached;
    c_equal_split = !equal;
    c_gap_epochs = !gaps;
    c_fault_epochs = !fault_epochs;
    c_degraded_plans = !degr_plans;
    c_causes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) causes []);
    c_cache_hits = fst (Controller.cache_stats plan_cache);
    c_cache_misses = snd (Controller.cache_stats plan_cache);
  }

type sweep_entry = {
  sw_class : Faults.class_;
  sw_result : chaos_result;
  sw_delta : float;  (** Availability vs the fault-free baseline. *)
}

let chaos_sweep ?seed ?epochs ?fault_seed ?pressure_budget_s
    (env : Availability.env) scheme ~scale =
  let baseline = run_chaos ?seed ?epochs ~faults:[] env scheme ~scale in
  let entries =
    Array.map
      (fun c ->
        let r =
          run_chaos ?seed ?epochs ?fault_seed ?pressure_budget_s
            ~faults:[ { Faults.fault = c; rate = Faults.default_rate c } ]
            env scheme ~scale
        in
        {
          sw_class = c;
          sw_result = r;
          sw_delta = r.c_availability -. baseline.c_availability;
        })
      Faults.all_classes
  in
  (baseline, entries)
