open Prete_net
open Prete_lp

type problem = {
  ts : Tunnels.t;
  demands : float array;
  scenarios : Scenario.set;
  beta : float;
}

type stats = { lp_solves : int; lp_pivots : int; mip_nodes : int }

type solution = {
  phi : float;
  alloc : float array;
  delta : bool array array;
  classes : Scenario.Classes.cls array array;
  expected_served : float;
  degraded : bool;
  stats : stats;
  basis : Simplex.basis option;
  solver : Solver_stats.t;
}

exception Infeasible_problem of string

let make_problem ~ts ~demands ~probs ?(max_order = 1) ?(cutoff = 0.0) ?(normalize = true)
    ~beta () =
  if Array.length demands <> Array.length ts.Tunnels.flows then
    invalid_arg "Te.make_problem: demands/flows mismatch";
  if Array.length probs <> Topology.num_fibers ts.Tunnels.topo then
    invalid_arg "Te.make_problem: probs/fibers mismatch";
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Te.make_problem: beta in (0,1)";
  let scenarios = Scenario.enumerate ~probs ~max_order ~cutoff () in
  let scenarios = if normalize then Scenario.normalize scenarios else scenarios in
  if scenarios.Scenario.covered_prob < beta then
    raise
      (Infeasible_problem
         (Printf.sprintf
            "covered scenario probability %.6f below beta %.6f — raise max_order or \
             lower the cutoff"
            scenarios.Scenario.covered_prob beta));
  { ts; demands; scenarios; beta }

let classes_of p =
  Array.map
    (fun (f : Tunnels.flow) ->
      Scenario.Classes.of_flow p.ts
        ~tunnels:(Tunnels.tunnels_of_flow p.ts f.Tunnels.flow_id)
        p.scenarios)
    p.ts.Tunnels.flows

let class_loss p ~alloc ~flow (c : Scenario.Classes.cls) =
  let d = p.demands.(flow) in
  if d <= 0.0 then 0.0
  else
    let surviving =
      List.fold_left (fun acc tid -> acc +. alloc.(tid)) 0.0 c.Scenario.Classes.survivors
    in
    Float.max 0.0 (1.0 -. (surviving /. d))

(* ------------------------------------------------------------------ *)
(* Shared model pieces                                                  *)
(* ------------------------------------------------------------------ *)

let num_tunnels p = Array.length p.ts.Tunnels.tunnels

(* Link × tunnel incidence in CSC form ({!Sparse}): one pass over the
   tunnels' link lists instead of the old O(links × tunnels × path)
   List.mem scan.  A column of the tunnel-major matrix is a link's term
   list, so capacity rows read straight off it; links no tunnel crosses
   have empty columns and produce no row.  Rows come out in ascending
   link-id order — a pure function of the tunnel set, shared by the
   availability and resilience model builders. *)
let capacity_terms (ts : Tunnels.t) =
  let nl = Topology.num_links ts.Tunnels.topo in
  let nt = Array.length ts.Tunnels.tunnels in
  let trips = ref [] in
  Array.iter
    (fun (tn : Tunnels.tunnel) ->
      List.iter
        (fun lid -> trips := (tn.Tunnels.tunnel_id, lid, 1.0) :: !trips)
        tn.Tunnels.links)
    ts.Tunnels.tunnels;
  let by_link = Sparse.of_triplets ~rows:nt ~cols:nl !trips in
  let acc = ref [] in
  for lid = nl - 1 downto 0 do
    if Sparse.col_nnz by_link lid > 0 then begin
      let terms = ref [] in
      Sparse.iter_col by_link lid (fun tid c -> terms := (tid, c) :: !terms);
      acc := (lid, List.rev !terms) :: !acc
    end
  done;
  !acc

let add_alloc_vars p m =
  Array.map
    (fun (tn : Tunnels.tunnel) ->
      Lp.add_var m (Printf.sprintf "a_t%d" tn.Tunnels.tunnel_id))
    p.ts.Tunnels.tunnels

let add_capacity_rows p m a_vars =
  List.iter
    (fun (lid, terms) ->
      let terms = List.map (fun (tid, c) -> (c, a_vars.(tid))) terms in
      ignore
        (Lp.add_constraint m ~name:(Printf.sprintf "cap_l%d" lid) terms Lp.Le
           (Topology.link p.ts.Tunnels.topo lid).Topology.capacity))
    (capacity_terms p.ts)

(* ------------------------------------------------------------------ *)
(* Fixed-δ LP in eliminated form: min Φ                                 *)
(* ------------------------------------------------------------------ *)

let solve_fixed_delta ?deadline ?warm ?engine ?pricing ~st p classes delta =
  let m = Lp.create () in
  let a_vars = add_alloc_vars p m in
  let phi = Lp.add_var m ~ub:1.0 "phi" in
  add_capacity_rows p m a_vars;
  Array.iteri
    (fun f cls ->
      let d = p.demands.(f) in
      if d > 0.0 then
        Array.iteri
          (fun ci (c : Scenario.Classes.cls) ->
            if delta.(f).(ci) then begin
              let terms =
                (d, phi)
                :: List.map (fun tid -> (1.0, a_vars.(tid))) c.Scenario.Classes.survivors
              in
              ignore
                (Lp.add_constraint m ~name:(Printf.sprintf "cov_f%d_c%d" f ci) terms
                   Lp.Ge d)
            end)
          cls)
    classes;
  Lp.set_objective m Lp.Minimize [ (1.0, phi) ];
  match
    Solver_stats.time st "fixed_delta" (fun () ->
        Simplex.solve ?deadline ?warm ?engine ?pricing m)
  with
  | Simplex.Optimal sol ->
    Solver_stats.record st sol;
    let alloc = Array.init (num_tunnels p) (fun t -> Simplex.value sol a_vars.(t)) in
    (sol.Simplex.objective, alloc, sol.Simplex.iterations, sol.Simplex.degraded,
     sol.Simplex.basis)
  | Simplex.Infeasible ->
    (* Cannot happen: a = 0, Φ = 1 satisfies every row. *)
    raise (Infeasible_problem "fixed-delta LP infeasible (internal error)")
  | Simplex.Unbounded -> raise (Infeasible_problem "fixed-delta LP unbounded (internal error)")

(* Second phase: at loss level Φ*, maximize probability- and demand-
   weighted served fraction so spare capacity still protects uncovered
   scenario classes. *)
let solve_second_phase ?deadline ?engine ?pricing ~st p classes delta phi_star =
  let m = Lp.create () in
  let a_vars = add_alloc_vars p m in
  add_capacity_rows p m a_vars;
  let total_demand = Prete_util.Stats.sum p.demands in
  let objective = ref [] in
  Array.iteri
    (fun f cls ->
      let d = p.demands.(f) in
      if d > 0.0 then begin
        let w = d /. Float.max 1e-9 total_demand in
        Array.iteri
          (fun ci (c : Scenario.Classes.cls) ->
            let s = Lp.add_var m ~ub:1.0 (Printf.sprintf "s_f%d_c%d" f ci) in
            (* d·s ≤ surviving allocation. *)
            let terms =
              (-.d, s)
              :: List.map (fun tid -> (1.0, a_vars.(tid))) c.Scenario.Classes.survivors
            in
            ignore (Lp.add_constraint m terms Lp.Ge 0.0);
            (* Covered classes must retain the Φ* guarantee. *)
            if delta.(f).(ci) then begin
              let terms =
                List.map (fun tid -> (1.0, a_vars.(tid))) c.Scenario.Classes.survivors
              in
              ignore (Lp.add_constraint m terms Lp.Ge ((1.0 -. phi_star) *. d))
            end;
            objective := (w *. c.Scenario.Classes.prob, s) :: !objective)
          cls
      end)
    classes;
  Lp.set_objective m Lp.Maximize !objective;
  match
    Solver_stats.time st "second_phase" (fun () ->
        Simplex.solve ?deadline ?engine ?pricing m)
  with
  | Simplex.Optimal sol ->
    Solver_stats.record st sol;
    let alloc = Array.init (num_tunnels p) (fun t -> Simplex.value sol a_vars.(t)) in
    (sol.Simplex.objective, alloc, sol.Simplex.iterations, sol.Simplex.degraded)
  | Simplex.Infeasible ->
    raise (Infeasible_problem "second-phase LP infeasible (internal error)")
  | Simplex.Unbounded ->
    raise (Infeasible_problem "second-phase LP unbounded (internal error)")

(* Greedy δ update: uncover the highest-loss classes of each flow while
   the covered probability stays ≥ β.  Zero-loss classes stay covered. *)
let improve_delta p classes delta alloc =
  let changed = ref false in
  let next =
    Array.mapi
      (fun f cls ->
        let n = Array.length cls in
        let losses =
          Array.mapi (fun ci c -> (ci, class_loss p ~alloc ~flow:f c)) cls
        in
        let order = Array.copy losses in
        (* Highest loss first; among ties prefer the cheapest coverage
           budget (smallest class probability), which breaks the
           degeneracies of equal-loss vertices (e.g. the Fig. 2
           instance). *)
        Array.sort
          (fun (c1, l1) (c2, l2) ->
            match compare l2 l1 with
            | 0 ->
              compare
                cls.(c1).Scenario.Classes.prob
                cls.(c2).Scenario.Classes.prob
            | c -> c)
          order;
        let covered = Array.make n true in
        let budget = ref (p.scenarios.Scenario.covered_prob -. p.beta) in
        Array.iter
          (fun (ci, loss) ->
            let pc = cls.(ci).Scenario.Classes.prob in
            if loss > 1e-9 && !budget -. pc >= -1e-12 then begin
              covered.(ci) <- false;
              budget := !budget -. pc
            end)
          order;
        Array.iteri (fun ci v -> if v <> delta.(f).(ci) then changed := true) covered;
        covered)
      classes
  in
  (next, !changed)

let build_full_mip ?(relax = false) p classes =
  let m = Lp.create () in
  let a_vars = add_alloc_vars p m in
  let phi = Lp.add_var m ~ub:1.0 "phi" in
  add_capacity_rows p m a_vars;
  let l_vars =
    Array.mapi
      (fun f cls ->
        Array.mapi
          (fun ci _ -> Lp.add_var m ~ub:1.0 (Printf.sprintf "l_f%d_c%d" f ci))
          cls)
      classes
  in
  let d_vars =
    Array.mapi
      (fun f cls ->
        Array.mapi
          (fun ci _ ->
            if relax then Lp.add_var m ~ub:1.0 (Printf.sprintf "delta_f%d_c%d" f ci)
            else Lp.add_var m ~binary:true (Printf.sprintf "delta_f%d_c%d" f ci))
          cls)
      classes
  in
  Array.iteri
    (fun f cls ->
      let d = p.demands.(f) in
      (* (5): coverage. *)
      let cov_terms =
        Array.to_list
          (Array.mapi (fun ci c -> (c.Scenario.Classes.prob, d_vars.(f).(ci))) cls)
      in
      ignore (Lp.add_constraint m cov_terms Lp.Ge p.beta);
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          (* (4): surviving allocation + l·d ≥ d. *)
          if d > 0.0 then begin
            let terms =
              (d, l_vars.(f).(ci))
              :: List.map (fun tid -> (1.0, a_vars.(tid))) c.Scenario.Classes.survivors
            in
            ignore (Lp.add_constraint m terms Lp.Ge d)
          end;
          (* (6): Φ ≥ l − 1 + δ. *)
          ignore
            (Lp.add_constraint m
               [ (1.0, phi); (-1.0, l_vars.(f).(ci)); (-1.0, d_vars.(f).(ci)) ]
               Lp.Ge (-1.0)))
        cls)
    classes;
  Lp.set_objective m Lp.Minimize [ (1.0, phi) ];
  (m, a_vars, phi, l_vars, d_vars)

(* LP-relaxation-guided δ: solve the full formulation with δ ∈ [0, 1] and
   drop, per flow, the classes the relaxation protects least (smallest relaxed delta),
   within the coverage budget.  This sees the cross-flow capacity coupling
   the purely loss-based greedy is blind to (e.g. the Fig. 2 instance). *)
let relaxation_delta ?deadline ?engine ?pricing ~st p classes =
  let m, _a_vars, phi, _l_vars, d_vars = build_full_mip ~relax:true p classes in
  (* Lexicographic tie-break: among phi-optimal relaxations prefer the
     maximum covered probability mass.  Degenerate instances (Fig. 2
     again) have many phi-optimal vertices whose relaxed deltas round
     very differently; the tiny coverage bonus steers the solver to the
     vertex where coverage is cheapest, which is exactly where delta
     lands integral and the rounding below stops depending on pivot
     order.  The weight is orders below any real phi trade-off, and the
     relaxed objective value is discarded anyway — only delta is read. *)
  let tie = 1e-4 in
  let bonus =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun f cls ->
              Array.to_list
                (Array.mapi
                   (fun ci (c : Scenario.Classes.cls) ->
                     (-.tie *. c.Scenario.Classes.prob, d_vars.(f).(ci)))
                   cls))
            classes))
  in
  Lp.set_objective m Lp.Minimize ((1.0, phi) :: bonus);
  (* The relaxation only guides a δ rounding, so a degraded (interrupted)
     optimum is still usable; a Phase-1 timeout simply skips the start. *)
  match
    Solver_stats.time st "relaxation" (fun () ->
        Simplex.solve ?deadline ?engine ?pricing m)
  with
  | exception Simplex.Timeout -> None
  | Simplex.Optimal sol ->
    Solver_stats.record st sol;
    let delta =
      Array.mapi
        (fun f cls ->
          let n = Array.length cls in
          let order = Array.init n (fun ci -> (ci, Simplex.value sol d_vars.(f).(ci))) in
          Array.sort (fun (_, v1) (_, v2) -> compare v1 v2) order;
          let covered = Array.make n true in
          let budget = ref (p.scenarios.Scenario.covered_prob -. p.beta) in
          Array.iter
            (fun (ci, v) ->
              let pc = cls.(ci).Scenario.Classes.prob in
              if v < 0.999 && !budget -. pc >= -1e-12 then begin
                covered.(ci) <- false;
                budget := !budget -. pc
              end)
            order;
          covered)
        classes
    in
    Some (delta, sol.Simplex.iterations)
  | Simplex.Infeasible | Simplex.Unbounded -> None

let solve ?(second_phase = true) ?(max_rounds = 8) ?(relaxation_start = true) ?deadline
    ?warm ?(warm_start = true) ?engine ?pricing p =
  let classes = classes_of p in
  let delta = Array.map (fun cls -> Array.make (Array.length cls) true) classes in
  let st = Solver_stats.create () in
  let lp_solves = ref 0 and lp_pivots = ref 0 in
  (* δ-fixpoint rounds perturb only the coverage rows, so each round's
     final basis warm-starts the next (repair path — the row structure
     shifts, so the reinstall is guided rather than exact). *)
  let last_basis = ref (if warm_start then warm else None) in
  (* Anytime fixpoint: every LP result is a feasible incumbent, so on
     budget expiry (between rounds, or an LP returning degraded / raising
     [Simplex.Timeout] mid-solve) we stop and keep the best seen so far,
     flagging the solution.  A Timeout with no incumbent propagates. *)
  let degraded = ref false in
  let rec loop delta best rounds =
    if Prete_util.Clock.expired deadline then begin
      degraded := true;
      best
    end
    else
      match
        solve_fixed_delta ?deadline
          ?warm:(if warm_start then !last_basis else None)
          ?engine ?pricing ~st p classes delta
      with
      | exception Simplex.Timeout ->
        degraded := true;
        best
      | phi, alloc, pivots, lp_degraded, basis ->
        incr lp_solves;
        lp_pivots := !lp_pivots + pivots;
        last_basis := Some basis;
        let best =
          match best with
          | Some (bphi, _, _, _) when bphi <= phi +. 1e-12 -> best
          | _ -> Some (phi, alloc, delta, basis)
        in
        if lp_degraded then begin
          degraded := true;
          best
        end
        else if rounds >= max_rounds then best
        else
          let next, changed = improve_delta p classes delta alloc in
          if not changed then best else loop next best (rounds + 1)
  in
  let best = loop delta None 1 in
  (* Second start from the relaxation rounding when the loss-based
     fixpoint left residual loss. *)
  let best =
    match best with
    | Some (phi, _, _, _) when relaxation_start && phi > 1e-9 && not !degraded -> (
      match relaxation_delta ?deadline ?engine ?pricing ~st p classes with
      | Some (delta_rx, pivots) ->
        incr lp_solves;
        lp_pivots := !lp_pivots + pivots;
        loop delta_rx best 1
      | None -> best)
    | _ -> best
  in
  match best with
  | None -> raise Simplex.Timeout
  | Some (phi, alloc, delta, basis) ->
    let expected_served, alloc =
      if second_phase && not (Prete_util.Clock.expired deadline) then begin
        match solve_second_phase ?deadline ?engine ?pricing ~st p classes delta phi with
        | exception Simplex.Timeout ->
          degraded := true;
          (nan, alloc)
        | served, alloc2, pivots, lp_degraded ->
          incr lp_solves;
          lp_pivots := !lp_pivots + pivots;
          if lp_degraded then degraded := true;
          (served, alloc2)
      end
      else begin
        if second_phase then degraded := true;
        (nan, alloc)
      end
    in
    {
      phi;
      alloc;
      delta;
      classes;
      expected_served;
      degraded = !degraded;
      stats = { lp_solves = !lp_solves; lp_pivots = !lp_pivots; mip_nodes = 0 };
      basis = Some basis;
      solver = st;
    }

(* ------------------------------------------------------------------ *)
(* Admission-control variant (TeaVar / FFC style)                       *)
(* ------------------------------------------------------------------ *)

type admission = {
  admitted : float array;
  adm_alloc : float array;
  adm_delta : bool array array;
  adm_classes : Scenario.Classes.cls array array;
  adm_degraded : bool;
  adm_stats : stats;
  adm_basis : Simplex.basis option;
  adm_solver : Solver_stats.t;
}

let solve_admission_fixed ?deadline ?warm ?engine ?pricing ~st p classes delta =
  let m = Lp.create () in
  let a_vars = add_alloc_vars p m in
  add_capacity_rows p m a_vars;
  let objective = ref [] in
  (* Admission b_f is split in two tiers (each capped at d/2) with the
     first tier weighted higher: a piecewise-concave utility that prefers
     giving every flow half its demand before topping anyone up — the
     fairness TeaVar's weighted throughput objective provides (and what
     picks the paper's 5 + 5 allocation in Fig. 2b over 10 + 0). *)
  let b_vars =
    Array.mapi
      (fun f cls ->
        let d = Float.max 0.0 p.demands.(f) in
        let b1 = Lp.add_var m ~ub:(d /. 2.0) (Printf.sprintf "b1_f%d" f) in
        let b2 = Lp.add_var m ~ub:(d /. 2.0) (Printf.sprintf "b2_f%d" f) in
        if d > 0.0 then begin
          Array.iteri
            (fun ci (c : Scenario.Classes.cls) ->
              if delta.(f).(ci) then begin
                let terms =
                  (-1.0, b1) :: (-1.0, b2)
                  :: List.map (fun tid -> (1.0, a_vars.(tid))) c.Scenario.Classes.survivors
                in
                ignore (Lp.add_constraint m terms Lp.Ge 0.0)
              end)
            cls;
          objective := (1.0, b1) :: (0.9, b2) :: !objective
        end;
        (b1, b2))
      classes
  in
  Lp.set_objective m Lp.Maximize !objective;
  match
    Solver_stats.time st "admission" (fun () ->
        Simplex.solve ?deadline ?warm ?engine ?pricing m)
  with
  | Simplex.Optimal sol ->
    Solver_stats.record st sol;
    let alloc = Array.init (num_tunnels p) (fun t -> Simplex.value sol a_vars.(t)) in
    let admitted =
      Array.map (fun (b1, b2) -> Simplex.value sol b1 +. Simplex.value sol b2) b_vars
    in
    (admitted, alloc, sol.Simplex.iterations, sol.Simplex.degraded, sol.Simplex.basis)
  | Simplex.Infeasible ->
    raise (Infeasible_problem "admission LP infeasible (internal error)")
  | Simplex.Unbounded ->
    raise (Infeasible_problem "admission LP unbounded (internal error)")

(* δ update for admission: uncover the classes whose surviving capacity
   most limits the flow, within the coverage budget. *)
let improve_delta_admission p classes delta alloc =
  let changed = ref false in
  let next =
    Array.mapi
      (fun f cls ->
        let n = Array.length cls in
        let losses = Array.mapi (fun ci c -> (ci, class_loss p ~alloc ~flow:f c)) cls in
        let order = Array.copy losses in
        (* Highest loss first; among ties prefer the cheapest coverage
           budget (smallest class probability), which breaks the
           degeneracies of equal-loss vertices (e.g. the Fig. 2
           instance). *)
        Array.sort
          (fun (c1, l1) (c2, l2) ->
            match compare l2 l1 with
            | 0 ->
              compare
                cls.(c1).Scenario.Classes.prob
                cls.(c2).Scenario.Classes.prob
            | c -> c)
          order;
        let covered = Array.make n true in
        let budget = ref (p.scenarios.Scenario.covered_prob -. p.beta) in
        Array.iter
          (fun (ci, loss) ->
            let pc = cls.(ci).Scenario.Classes.prob in
            if loss > 1e-9 && !budget -. pc >= -1e-12 then begin
              covered.(ci) <- false;
              budget := !budget -. pc
            end)
          order;
        Array.iteri (fun ci v -> if v <> delta.(f).(ci) then changed := true) covered;
        covered)
      classes
  in
  (next, !changed)

let solve_admission ?(max_rounds = 6) ?(skip_unprotectable = false) ?deadline ?warm
    ?(warm_start = true) ?engine ?pricing p =
  let classes = classes_of p in
  (* FFC-style full coverage would force b = 0 on any flow with a scenario
     class that no tunnel survives (e.g. double cuts killing all four
     tunnels); FFC implementations exclude such unprotectable scenarios
     from the guarantee. *)
  let delta =
    Array.map
      (fun cls ->
        Array.map
          (fun (c : Scenario.Classes.cls) ->
            not (skip_unprotectable && c.Scenario.Classes.survivors = []))
          cls)
      classes
  in
  let st = Solver_stats.create () in
  let last_basis = ref (if warm_start then warm else None) in
  let lp_solves = ref 0 and lp_pivots = ref 0 in
  (* Rank candidate admissions by total first, worst-served flow second,
     so equal-throughput rounds prefer the fairer split. *)
  let score admitted =
    let total = Prete_util.Stats.sum admitted in
    let worst = ref 1.0 in
    Array.iteri
      (fun f b ->
        let d = p.demands.(f) in
        if d > 0.0 then worst := Float.min !worst (b /. d))
      admitted;
    (total, !worst)
  in
  let better (t1, w1) (t2, w2) = t1 > t2 +. 1e-9 || (t1 >= t2 -. 1e-9 && w1 > w2 +. 1e-9) in
  let degraded = ref false in
  let rec loop delta best rounds =
    if Prete_util.Clock.expired deadline then begin
      degraded := true;
      best
    end
    else
      match
        solve_admission_fixed ?deadline
          ?warm:(if warm_start then !last_basis else None)
          ?engine ?pricing ~st p classes delta
      with
      | exception Simplex.Timeout ->
        degraded := true;
        best
      | admitted, alloc, pivots, lp_degraded, basis ->
        incr lp_solves;
        lp_pivots := !lp_pivots + pivots;
        last_basis := Some basis;
        let sc = score admitted in
        let best =
          match best with
          | Some (bsc, _, _, _, _) when not (better sc bsc) -> best
          | _ -> Some (sc, admitted, alloc, delta, basis)
        in
        if lp_degraded then begin
          degraded := true;
          best
        end
        else if rounds >= max_rounds then best
        else
          let next, changed = improve_delta_admission p classes delta alloc in
          if not changed then best else loop next best (rounds + 1)
  in
  match loop delta None 1 with
  | None -> raise Simplex.Timeout
  | Some (_, admitted, alloc, delta, basis) ->
    {
      admitted;
      adm_alloc = alloc;
      adm_delta = delta;
      adm_classes = classes;
      adm_degraded = !degraded;
      adm_stats = { lp_solves = !lp_solves; lp_pivots = !lp_pivots; mip_nodes = 0 };
      adm_basis = Some basis;
      adm_solver = st;
    }

(* ------------------------------------------------------------------ *)
(* Exact MIP on the full formulation                                    *)
(* ------------------------------------------------------------------ *)

let solve_mip ?deadline ?warm ?(warm_start = true) ?engine ?pricing p =
  let classes = classes_of p in
  let st = Solver_stats.create () in
  let m, a_vars, phi, _l_vars, d_vars = build_full_mip p classes in
  let of_incumbent ~degraded sol =
    let alloc = Array.init (num_tunnels p) (fun t -> Mip.value sol a_vars.(t)) in
    let delta = Array.map (Array.map (fun v -> Mip.value sol v >= 0.5)) d_vars in
    {
      phi = Mip.value sol phi;
      alloc;
      delta;
      classes;
      expected_served = nan;
      degraded;
      stats = { lp_solves = 0; lp_pivots = sol.Mip.pivots; mip_nodes = sol.Mip.nodes };
      basis = sol.Mip.basis;
      solver = st;
    }
  in
  match
    Solver_stats.time st "mip" (fun () ->
        Mip.solve ?deadline
          ?warm:(if warm_start then warm else None)
          ~warm_start ~stats:st ?engine ?pricing m)
  with
  | Mip.Optimal sol -> of_incumbent ~degraded:false sol
  | Mip.Node_limit (Some sol) -> of_incumbent ~degraded:true sol
  | Mip.Node_limit None -> raise Simplex.Timeout
  | Mip.Infeasible -> raise (Infeasible_problem "MIP infeasible")
  | Mip.Unbounded -> raise (Infeasible_problem "MIP unbounded (internal error)")

(* ------------------------------------------------------------------ *)
(* Benders decomposition (Algorithm 2 / Appendix A.4)                   *)
(* ------------------------------------------------------------------ *)

(* Subproblem: the full formulation with δ fixed; returns the optimum,
   the allocation, and the duals w of the (6) rows, which form the
   optimality cut  Φ ≥ SP(δ̂) + Σ w (δ − δ̂). *)
let benders_subproblem ?deadline ?warm ?engine ?pricing ~st p classes delta =
  let m = Lp.create () in
  let a_vars = add_alloc_vars p m in
  let phi = Lp.add_var m ~ub:1.0 "phi" in
  add_capacity_rows p m a_vars;
  let row_of = Array.map (fun cls -> Array.make (Array.length cls) (-1)) classes in
  Array.iteri
    (fun f cls ->
      let d = p.demands.(f) in
      Array.iteri
        (fun ci (c : Scenario.Classes.cls) ->
          let l = Lp.add_var m ~ub:1.0 (Printf.sprintf "l_f%d_c%d" f ci) in
          if d > 0.0 then begin
            let terms =
              (d, l)
              :: List.map (fun tid -> (1.0, a_vars.(tid))) c.Scenario.Classes.survivors
            in
            ignore (Lp.add_constraint m terms Lp.Ge d)
          end;
          let dval = if delta.(f).(ci) then 1.0 else 0.0 in
          row_of.(f).(ci) <-
            Lp.add_constraint m [ (1.0, phi); (-1.0, l) ] Lp.Ge (dval -. 1.0))
        cls)
    classes;
  Lp.set_objective m Lp.Minimize [ (1.0, phi) ];
  match
    Solver_stats.time st "benders_sub" (fun () ->
        Simplex.solve ?deadline ?warm ?engine ?pricing m)
  with
  | Simplex.Optimal sol ->
    Solver_stats.record st sol;
    let alloc = Array.init (num_tunnels p) (fun t -> Simplex.value sol a_vars.(t)) in
    let w =
      Array.map (Array.map (fun row -> Simplex.dual sol row)) row_of
    in
    (sol.Simplex.objective, alloc, w, sol.Simplex.iterations, sol.Simplex.degraded,
     sol.Simplex.basis)
  | Simplex.Infeasible ->
    raise (Infeasible_problem "Benders subproblem infeasible (internal error)")
  | Simplex.Unbounded ->
    raise (Infeasible_problem "Benders subproblem unbounded (internal error)")

type cut = { base : float; coefs : float array array (* [flow][class] *) }

let benders_master ?deadline ?warm ?(warm_start = true) ?engine ?pricing ~st p classes cuts =
  let m = Lp.create () in
  let phi = Lp.add_var m ~ub:1.0 "phi" in
  let d_vars =
    Array.mapi
      (fun f cls ->
        Array.mapi
          (fun ci _ -> Lp.add_var m ~binary:true (Printf.sprintf "delta_f%d_c%d" f ci))
          cls)
      classes
  in
  Array.iteri
    (fun f cls ->
      let cov_terms =
        Array.to_list
          (Array.mapi (fun ci c -> (c.Scenario.Classes.prob, d_vars.(f).(ci))) cls)
      in
      ignore (Lp.add_constraint m cov_terms Lp.Ge p.beta))
    classes;
  List.iter
    (fun cut ->
      (* Φ − Σ w δ ≥ base. *)
      let terms = ref [ (1.0, phi) ] in
      Array.iteri
        (fun f row ->
          Array.iteri
            (fun ci w -> if Float.abs w > 1e-12 then terms := (-.w, d_vars.(f).(ci)) :: !terms)
            row)
        cut.coefs;
      ignore (Lp.add_constraint m !terms Lp.Ge cut.base))
    cuts;
  Lp.set_objective m Lp.Minimize [ (1.0, phi) ];
  match
    Solver_stats.time st "benders_master" (fun () ->
        Mip.solve ~max_nodes:50_000 ?deadline ?warm ~warm_start ~stats:st
          ?engine ?pricing m)
  with
  | Mip.Optimal sol ->
    let delta = Array.map (Array.map (fun v -> Mip.value sol v >= 0.5)) d_vars in
    `Exact (sol.Mip.objective, delta, sol.Mip.nodes, sol.Mip.basis)
  | Mip.Node_limit (Some sol) ->
    (* The incumbent δ still satisfies the coverage rows, so the outer
       loop may keep iterating with it — but its objective is no longer a
       valid lower bound. *)
    let delta = Array.map (Array.map (fun v -> Mip.value sol v >= 0.5)) d_vars in
    `Truncated (delta, sol.Mip.nodes, sol.Mip.basis)
  | Mip.Node_limit None -> `Gave_up
  | Mip.Infeasible -> raise (Infeasible_problem "Benders master infeasible")
  | Mip.Unbounded -> raise (Infeasible_problem "Benders master unbounded (internal error)")

let solve_benders ?(eps = 1e-4) ?(max_iters = 40) ?deadline ?warm ?(warm_start = true)
    ?pool ?engine ?pricing p =
  let pool =
    match pool with Some pl -> pl | None -> Prete_exec.Pool.default ()
  in
  (* Per-flow scenario classes are independent; build them on the pool. *)
  let classes =
    Prete_exec.Pool.parallel_map pool
      (fun (f : Tunnels.flow) ->
        Scenario.Classes.of_flow p.ts
          ~tunnels:(Tunnels.tunnels_of_flow p.ts f.Tunnels.flow_id)
          p.scenarios)
      p.ts.Tunnels.flows
  in
  let st = Solver_stats.create () in
  (* The subproblem has an identical shape every iteration (only the rhs
     of the (6) rows moves with δ), so its basis exact-installs across
     iterations; the master grows cuts every round, so its warm start
     takes the guided-repair path.  Each candidate slot retains its own
     subproblem basis: slot 0 is the master's δ, slot 1 the greedy
     re-cover of the incumbent allocation. *)
  let sub_bases = [| (if warm_start then warm else None); None |] in
  let master_basis = ref None in
  (* Initialize δ = 1 (line 2 of Algorithm 2): directly satisfies (5). *)
  let delta = ref (Array.map (fun cls -> Array.make (Array.length cls) true) classes) in
  let ub = ref 1.0 and lb = ref 0.0 in
  let best = ref None in
  let cuts = ref [] in
  let lp_solves = ref 0 and lp_pivots = ref 0 and mip_nodes = ref 0 in
  let iters = ref 0 in
  let degraded = ref false in
  let stop = ref false in
  while (not !stop) && !ub -. !lb > eps && !iters < max_iters do
    incr iters;
    if Prete_util.Clock.expired deadline then begin
      degraded := true;
      stop := true
    end
    else begin
      (* Step 1: subproblems with fixed δ, one per candidate, fanned out
         on the pool.  Candidate 0 is always the master's proposal;
         candidate 1 (once an incumbent exists) re-covers the incumbent
         allocation with {!improve_delta}, which keeps per-flow coverage
         ≥ β — so every candidate is master-feasible and its subproblem
         yields both a valid incumbent and a valid optimality cut.  The
         candidate set depends only on the iteration state, never on the
         pool, and results merge in candidate order: bit-identical at any
         domain count. *)
      let cands =
        match !best with
        | Some (_, balloc, _) ->
          let impr, changed = improve_delta p classes !delta balloc in
          if changed then [| !delta; impr |] else [| !delta |]
        | None -> [| !delta |]
      in
      let results =
        Prete_exec.Pool.parallel_map pool ~chunk:1
          (fun i ->
            match
              benders_subproblem ?deadline ?warm:sub_bases.(i) ?engine ?pricing
                ~st p classes cands.(i)
            with
            | exception Simplex.Timeout -> `Timeout
            | r -> `Ok r)
          (Array.init (Array.length cands) Fun.id)
      in
      let any_timeout = ref false and any_cut = ref false in
      Array.iteri
        (fun i res ->
          match res with
          | `Timeout -> any_timeout := true
          | `Ok (sp_obj, alloc, w, pivots, sp_degraded, basis) ->
            incr lp_solves;
            lp_pivots := !lp_pivots + pivots;
            if warm_start then sub_bases.(i) <- Some basis;
            if sp_obj < !ub then begin
              ub := sp_obj;
              best := Some (sp_obj, alloc, Array.map Array.copy cands.(i))
            end;
            if sp_degraded then
              (* A degraded subproblem yields unreliable duals: no cut. *)
              degraded := true
            else begin
              (* Optimality cut: Φ ≥ sp_obj + Σ w (δ − δ̂). *)
              let base = ref sp_obj in
              Array.iteri
                (fun f row ->
                  Array.iteri
                    (fun ci wv -> if cands.(i).(f).(ci) then base := !base -. wv)
                    row)
                w;
              cuts := { base = !base; coefs = w } :: !cuts;
              any_cut := true
            end)
        results;
      if !any_timeout || not !any_cut then begin
        (* Budget exhausted (or only unreliable duals): keep the
           incumbent and stop. *)
        degraded := true;
        stop := true
      end
      else begin
        (* Step 2: master problem. *)
        match
          benders_master ?deadline ?warm:!master_basis ~warm_start ?engine
            ?pricing ~st p classes !cuts
        with
        | `Exact (mp_obj, next_delta, nodes, mb) ->
          mip_nodes := !mip_nodes + nodes;
          if warm_start then master_basis := mb;
          if mp_obj > !lb then lb := mp_obj;
          delta := next_delta
        | `Truncated (next_delta, nodes, mb) ->
          (* Usable δ but no valid lower bound: take one more subproblem
             pass if budget allows, flagged degraded. *)
          mip_nodes := !mip_nodes + nodes;
          if warm_start then master_basis := mb;
          degraded := true;
          delta := next_delta
        | `Gave_up ->
          degraded := true;
          stop := true
      end
    end
  done;
  match !best with
  | None -> raise Simplex.Timeout
  | Some (phi, alloc, delta) ->
    {
      phi;
      alloc;
      delta;
      classes;
      expected_served = nan;
      degraded = !degraded;
      stats = { lp_solves = !lp_solves; lp_pivots = !lp_pivots; mip_nodes = !mip_nodes };
      basis = sub_bases.(0);
      solver = st;
    }
