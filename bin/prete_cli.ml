(* Command-line front end for the PreTE library.

   Subcommands:
     topology      — show a topology's inventory
     dataset       — generate a synthetic optical event log and summarize it
     train         — train and evaluate the failure predictors
     solve         — run the PreTE optimization for one TE period
     availability  — availability of a TE scheme at a demand scale
     simulate      — Monte-Carlo epoch simulation (cross-check)
     pipeline      — controller reaction timeline for a degradation *)

open Cmdliner
open Prete
open Prete_net

let topo_arg =
  let doc = "Topology: B4, IBM or TWAN." in
  Arg.(value & opt string "B4" & info [ "t"; "topology" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Demand scale factor." in
  Arg.(value & opt float 2.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let beta_arg =
  let doc = "Availability level beta for the optimization." in
  Arg.(value & opt float 0.999 & info [ "b"; "beta" ] ~docv:"BETA" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc =
    "Worker domains for parallel evaluation (defaults to the \
     $(b,PRETE_DOMAINS) environment variable, else 1).  Results are \
     bit-identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

(* LP engine selection: the flags set the session defaults, which every
   solver call inherits unless a call site pins ?engine/?pricing. *)
let engine_conv =
  let parse s =
    match Prete_lp.Simplex.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown LP engine %S (lu|revised|dense)" s))
  in
  let print ppf e = Format.pp_print_string ppf (Prete_lp.Simplex.engine_name e) in
  Arg.conv (parse, print)

let pricing_conv =
  let parse s =
    match Prete_lp.Simplex.pricing_of_string s with
    | Some p -> Ok p
    | None ->
      Error (`Msg (Printf.sprintf "unknown pricing rule %S (dantzig|devex|partial)" s))
  in
  let print ppf p = Format.pp_print_string ppf (Prete_lp.Simplex.pricing_name p) in
  Arg.conv (parse, print)

let lp_term =
  let engine =
    let doc =
      "LP engine: $(b,lu) (bounded-variable simplex over a presolved \
       model with a sparse LU basis and Forrest–Tomlin updates, the \
       default), $(b,revised) (sparse revised simplex with an eta-file \
       basis) or $(b,dense) (dense-tableau differential oracle)."
    in
    Arg.(
      value
      & opt engine_conv !Prete_lp.Simplex.default_engine
      & info [ "lp-engine" ] ~docv:"ENGINE" ~doc)
  in
  let pricing =
    let doc = "Simplex pricing rule: $(b,dantzig) (default), $(b,devex) or $(b,partial)." in
    Arg.(
      value
      & opt pricing_conv !Prete_lp.Simplex.default_pricing
      & info [ "pricing" ] ~docv:"RULE" ~doc)
  in
  let set engine pricing =
    Prete_lp.Simplex.default_engine := engine;
    Prete_lp.Simplex.default_pricing := pricing
  in
  Term.(const set $ engine $ pricing)

(* Evaluation commands run against a pool sized by --domains (or
   PRETE_DOMAINS), shut down when the command finishes. *)
let with_pool domains f = Prete_exec.Pool.with_pool ?domains f

let scheme_of_string ~predictor name =
  match String.lowercase_ascii name with
  | "ecmp" -> Schemes.Ecmp
  | "smore" -> Schemes.Smore
  | "ffc1" -> Schemes.Ffc 1
  | "ffc2" -> Schemes.Ffc 2
  | "teavar" -> Schemes.Teavar
  | "arrow" -> Schemes.Arrow
  | "flexile" -> Schemes.Flexile
  | "prete" -> Schemes.prete_default ~predictor ()
  | "prete-naive" -> Schemes.prete_naive ~predictor ()
  | "oracle" -> Schemes.Oracle
  | other -> failwith ("unknown scheme " ^ other)

(* ------------------------------------------------------------------ *)

let topology_cmd =
  let run name file export =
    let topo =
      match file with Some path -> Topology_io.load path | None -> Topology.by_name name
    in
    (match export with
    | Some path ->
      Topology_io.save topo path;
      Printf.printf "wrote %s\n" path
    | None -> ());
    Format.printf "%a@." Topology.pp_summary topo;
    let traffic = Traffic.generate topo in
    let ts = Tunnels.build topo traffic.Traffic.pairs in
    Printf.printf "flows: %d, tunnels: %d, traffic matrices: %d\n"
      (Array.length ts.Tunnels.flows)
      (Array.length ts.Tunnels.tunnels)
      (Array.length traffic.Traffic.matrices);
    Printf.printf "worst single-cut capacity loss: %.1f Tbps\n"
      (Array.init (Topology.num_fibers topo) (fun f ->
           Topology.capacity_lost_on_cut topo f)
      |> Array.fold_left Float.max 0.0
      |> fun x -> x /. 1000.0)
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH" ~doc:"Load a custom topology file instead of a built-in.")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"PATH" ~doc:"Also write the topology to a file.")
  in
  let doc = "Show a topology's inventory (Table 3); optionally import/export files." in
  Cmd.v (Cmd.info "topology" ~doc) Term.(const run $ topo_arg $ file $ export)

let dataset_cmd =
  let run name seed days =
    let topo = Topology.by_name name in
    let ds = Prete_optics.Dataset.generate ~seed ~horizon_days:days topo in
    Printf.printf "%d degradations, %d cuts over %d days\n"
      (Array.length ds.Prete_optics.Dataset.degradations)
      (Array.length ds.Prete_optics.Dataset.cuts)
      days;
    Printf.printf "predictable cuts: %.1f%% (alpha); P(cut|degradation) = %.2f\n"
      (100.0 *. Prete_optics.Dataset.predictable_fraction ds)
      (Prete_optics.Dataset.hazard_fraction ds);
    let r = Prete_util.Hypothesis.chi2_contingency (Prete_optics.Dataset.epoch_contingency ds) in
    Printf.printf "degradation/cut dependence: log10 p = %.0f\n"
      r.Prete_util.Hypothesis.log10_p
  in
  let days =
    Arg.(value & opt int 365 & info [ "days" ] ~docv:"DAYS" ~doc:"Horizon in days.")
  in
  let doc = "Generate and summarize a synthetic optical event log." in
  Cmd.v (Cmd.info "dataset" ~doc) Term.(const run $ topo_arg $ seed_arg $ days)

let train_cmd =
  let run name seed epochs =
    let topo = Topology.by_name name in
    let ds = Prete_optics.Dataset.generate ~seed topo in
    let corpus = Prete_ml.Corpus.of_dataset ds in
    Printf.printf "training on %d events (%.0f%% positive), testing on %d\n"
      (Array.length corpus.Prete_ml.Corpus.train)
      (100.0 *. Prete_ml.Corpus.class_balance corpus.Prete_ml.Corpus.train)
      (Array.length corpus.Prete_ml.Corpus.test);
    let eval label predict =
      let c = Prete_ml.Metrics.evaluate ~predict corpus.Prete_ml.Corpus.test in
      Printf.printf "%-10s P %.2f  R %.2f  F1 %.2f  Acc %.2f\n" label
        (Prete_ml.Metrics.precision c) (Prete_ml.Metrics.recall c)
        (Prete_ml.Metrics.f1 c) (Prete_ml.Metrics.accuracy c)
    in
    let nn =
      Prete_ml.Mlp.train
        ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs }
        corpus.Prete_ml.Corpus.train
    in
    eval "NN" (Prete_ml.Mlp.predict_label nn);
    let dt = Prete_ml.Dtree.train corpus.Prete_ml.Corpus.train in
    eval "DT" (Prete_ml.Dtree.predict_label dt);
    let st = Prete_ml.Baselines.statistic_train corpus.Prete_ml.Corpus.train in
    eval "Statistic" (Prete_ml.Baselines.statistic_label st)
  in
  let epochs =
    Arg.(value & opt int 25 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let doc = "Train and evaluate the failure predictors (Table 5)." in
  Cmd.v (Cmd.info "train" ~doc) Term.(const run $ topo_arg $ seed_arg $ epochs)

let solve_cmd =
  let run () name scale beta degraded =
    let topo = Topology.by_name name in
    let traffic = Traffic.generate topo in
    let ts = Tunnels.build topo traffic.Traffic.pairs in
    let model = Prete_optics.Fiber_model.generate topo in
    let demands = Traffic.demand traffic ~scale ~epoch:12 in
    let rng = Prete_util.Rng.create 5 in
    let obs =
      match degraded with
      | None -> { Calibrate.degraded = []; Calibrate.will_cut = [] }
      | Some fb ->
        let feats = Prete_optics.Hazard.sample_features rng ~topo ~fiber:fb ~epoch:48 in
        { Calibrate.degraded = [ (fb, feats) ]; Calibrate.will_cut = [] }
    in
    let predictor = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
    let probs = Calibrate.probabilities (Calibrate.Calibrated predictor) model obs in
    let ts =
      match degraded with
      | Some fb -> Tunnel_update.merged (Tunnel_update.react ts ~degraded_fiber:fb ())
      | None -> ts
    in
    let p = Te.make_problem ~ts ~demands ~probs ~beta () in
    let sol, elapsed = Controller.wall (fun () -> Te.solve p) in
    Printf.printf "phi = %.4f, expected served = %.4f (%.2f s, %d LPs, %d pivots)\n"
      sol.Te.phi sol.Te.expected_served elapsed
      sol.Te.stats.Te.lp_solves sol.Te.stats.Te.lp_pivots;
    Format.printf "solver: %a@." Prete_lp.Solver_stats.pp sol.Te.solver
  in
  let degraded =
    Arg.(
      value
      & opt (some int) None
      & info [ "degraded" ] ~docv:"FIBER" ~doc:"Fiber currently degrading (triggers Algorithm 1).")
  in
  let doc = "Run the PreTE optimization for one TE period." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(const run $ lp_term $ topo_arg $ scale_arg $ beta_arg $ degraded)

let availability_cmd =
  let run () name scale scheme_name domains =
    let topo = Topology.by_name name in
    let env = Availability.make_env topo in
    let predictor = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
    let scheme = scheme_of_string ~predictor scheme_name in
    let a =
      with_pool domains (fun pool -> Availability.availability ~pool env scheme ~scale)
    in
    Printf.printf "%s on %s at %.1fx demand: availability %.4f%% (%.2f nines)\n"
      (Schemes.name scheme) name scale (100.0 *. a) (Availability.nines a)
  in
  let scheme =
    Arg.(
      value & opt string "prete"
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"ecmp | smore | ffc1 | ffc2 | teavar | arrow | flexile | prete | prete-naive | oracle")
  in
  let doc = "Evaluate a TE scheme's availability (Fig. 13)." in
  Cmd.v (Cmd.info "availability" ~doc)
    Term.(const run $ lp_term $ topo_arg $ scale_arg $ scheme $ domains_arg)

let pipeline_cmd =
  let run () name fiber =
    let topo = Topology.by_name name in
    let env = Availability.make_env topo in
    let nf = Topology.num_fibers topo in
    let fiber = ((fiber mod nf) + nf) mod nf in
    let demands = Traffic.demand env.Availability.traffic ~scale:2.0 ~epoch:12 in
    let update = Tunnel_update.react env.Availability.ts ~degraded_fiber:fiber () in
    let merged = Tunnel_update.merged update in
    let predictor = Prete_optics.Hazard.eval ~num_fibers:nf in
    let probs =
      Calibrate.probabilities (Calibrate.Calibrated predictor) env.Availability.model
        { Calibrate.degraded = [ (fiber, env.Availability.degr_events.(fiber)) ];
          Calibrate.will_cut = [] }
    in
    let _sol, report =
      Controller.run
        ~infer:(fun () -> ignore (predictor env.Availability.degr_events.(fiber)))
        ~regen:(fun () -> ignore (Scenario.enumerate ~probs ()))
        ~te:(fun () ->
          Te.solve ~relaxation_start:false
            (Te.make_problem ~ts:merged ~demands ~probs ~beta:env.Availability.beta ()))
        ~n_new_tunnels:(Tunnel_update.num_new update)
        ()
    in
    List.iter
      (fun t ->
        Printf.printf "%-24s %7.3f s\n" (Controller.stage_name t.Controller.stage)
          t.Controller.duration_s)
      report.Controller.timeline;
    Printf.printf "end-to-end: %.2f s (%d new tunnels)\n" report.Controller.end_to_end_s
      (Tunnel_update.num_new update)
  in
  let fiber =
    Arg.(value & opt int 3 & info [ "fiber" ] ~docv:"FIBER" ~doc:"Degrading fiber id.")
  in
  let doc = "Controller reaction timeline for a degradation (Fig. 11)." in
  Cmd.v (Cmd.info "pipeline" ~doc) Term.(const run $ lp_term $ topo_arg $ fiber)

let simulate_cmd =
  let run () name scale scheme_name epochs domains =
    let topo = Topology.by_name name in
    let env = Availability.make_env topo in
    let predictor = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
    let scheme = scheme_of_string ~predictor scheme_name in
    with_pool domains (fun pool ->
        let analytic = Availability.availability ~pool env scheme ~scale in
        let r = Simulate.run ~epochs ~pool env scheme ~scale in
        Printf.printf
          "%s on %s at %.1fx over %d epochs:\n  Monte-Carlo availability %.5f (analytic %.5f)\n"
          (Schemes.name scheme) name scale epochs r.Simulate.availability analytic;
        Printf.printf
          "  %d epochs with cuts (%d with simultaneous cuts), %d with degradations\n"
          r.Simulate.cut_epochs r.Simulate.multi_cut_epochs r.Simulate.degradation_epochs;
        if Prete_exec.Pool.domains pool > 1 then
          Format.printf "  pool: %a@." Prete_exec.Pool_stats.pp
            (Prete_exec.Pool.stats pool))
  in
  let scheme =
    Arg.(
      value & opt string "prete"
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"ecmp | smore | ffc1 | teavar | arrow | flexile | prete | oracle")
  in
  let epochs =
    Arg.(value & opt int 20000 & info [ "epochs" ] ~docv:"N" ~doc:"Epochs to simulate.")
  in
  let doc = "Monte-Carlo epoch simulation (cross-check of the analytic evaluator)." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ lp_term $ topo_arg $ scale_arg $ scheme $ epochs $ domains_arg)

let chaos_cmd =
  let run name scale scheme_name seed epochs domains =
    let topo = Topology.by_name name in
    let env = Availability.make_env topo in
    let predictor = Prete_optics.Hazard.eval ~num_fibers:(Topology.num_fibers topo) in
    let scheme = scheme_of_string ~predictor scheme_name in
    let baseline, entries =
      with_pool domains (fun pool ->
          Simulate.chaos_sweep ~seed ~epochs ~pool env scheme ~scale)
    in
    Printf.printf "%s on %s at %.1fx demand, %d epochs per run\n"
      (Schemes.name scheme) name scale epochs;
    Printf.printf "fault-free baseline: availability %.5f (%d/%d/%d primary/cached/equal-split)\n\n"
      baseline.Simulate.c_availability baseline.Simulate.c_primary
      baseline.Simulate.c_cached baseline.Simulate.c_equal_split;
    Printf.printf "%-20s %12s %9s %8s %8s %8s %6s\n" "fault class" "availability"
      "delta" "primary" "cached" "equal" "gaps";
    Array.iter
      (fun e ->
        let r = e.Simulate.sw_result in
        Printf.printf "%-20s %12.5f %+9.5f %8d %8d %8d %6d\n"
          (Prete.Faults.class_name e.Simulate.sw_class)
          r.Simulate.c_availability e.Simulate.sw_delta r.Simulate.c_primary
          r.Simulate.c_cached r.Simulate.c_equal_split r.Simulate.c_gap_epochs)
      entries;
    let causes =
      List.sort_uniq compare
        (List.concat_map
           (fun e -> List.map fst e.Simulate.sw_result.Simulate.c_causes)
           (Array.to_list entries))
    in
    if causes <> [] then
      Printf.printf "\nfallback causes seen: %s\n" (String.concat ", " causes)
  in
  let scheme =
    Arg.(
      value & opt string "prete"
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"ecmp | smore | ffc1 | ffc2 | teavar | arrow | flexile | prete | prete-naive | oracle")
  in
  let epochs =
    Arg.(value & opt int 400 & info [ "epochs" ] ~docv:"N" ~doc:"Epochs per fault class.")
  in
  let doc =
    "Fault-injection sweep: availability delta vs a fault-free baseline per fault class."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ topo_arg $ scale_arg $ scheme $ seed_arg $ epochs $ domains_arg)

let stream_cmd =
  let print_shard_result (r : Prete_rt.Shard.result) =
    let m = r.Prete_rt.Shard.s_metrics in
    let pt = r.Prete_rt.Shard.s_partition in
    Printf.printf
      "%d epochs, %d fibers x %d flows across %d shards (seed %d): %d with \
       degradations, %d with cuts\n"
      r.Prete_rt.Shard.s_epochs
      (Array.length pt.Prete_rt.Shard.pt_region_of)
      r.Prete_rt.Shard.s_flows pt.Prete_rt.Shard.pt_shards
      r.Prete_rt.Shard.s_config.Prete_rt.Runtime.seed
      r.Prete_rt.Shard.s_degr_epochs r.Prete_rt.Shard.s_cut_epochs;
    Printf.printf
      "samples %d; alarms %d = debounced %d + shed %d + batched %d (%s); \
       %d batches, %d deferred\n"
      (Prete_rt.Metrics.counter m "samples")
      r.Prete_rt.Shard.s_alarms r.Prete_rt.Shard.s_debounced
      r.Prete_rt.Shard.s_shed r.Prete_rt.Shard.s_batched
      (if Prete_rt.Shard.accounted r then "accounted" else "UNACCOUNTED")
      r.Prete_rt.Shard.s_batches r.Prete_rt.Shard.s_deferred;
    Printf.printf
      "reaction latency p50 %.2f s / p99 %.2f s; aggregate %.0f samples/s, \
       slowest shard %.0f ticks/s\n"
      (Prete_rt.Metrics.hist_quantile m "reaction_latency_s" 0.5)
      (Prete_rt.Metrics.hist_quantile m "reaction_latency_s" 0.99)
      (Prete_rt.Shard.aggregate_rate r)
      (Prete_rt.Shard.tick_rate r);
    Printf.printf "state-fiber cuts: %d reacted in time, %d missed\n"
      r.Prete_rt.Shard.s_reacted_in_time r.Prete_rt.Shard.s_missed;
    Printf.printf
      "availability: stream %.5f / periodic-only %.5f / instant %.5f\n"
      r.Prete_rt.Shard.s_avail_stream r.Prete_rt.Shard.s_avail_periodic
      r.Prete_rt.Shard.s_avail_instant;
    (let retrains = Prete_rt.Metrics.counter m "retrains" in
     if retrains > 0 then
       Printf.printf
         "online retrain: %d versions swapped in, swap latency mean %.6f s / \
          max %.6f s\n"
         retrains
         (Prete_rt.Metrics.wall_hist_mean m "swap_s")
         (Prete_rt.Metrics.wall_hist_max m "swap_s"));
    Array.iter
      (fun ss ->
        Printf.printf
          "  shard %d: %d fibers, %d samples, %d alarms, busy %.3f s\n"
          ss.Prete_rt.Shard.ss_region ss.Prete_rt.Shard.ss_fibers
          ss.Prete_rt.Shard.ss_samples ss.Prete_rt.Shard.ss_alarms
          ss.Prete_rt.Shard.ss_busy_s)
      r.Prete_rt.Shard.s_shards
  in
  let run () name traffic epochs seed scale ewma_alpha cusum_k cusum_h debounce
      gap_rate dup_rate reorder_rate max_delay deadline predictor stale_after
      no_detour shards queue_bound shed_policy retrain_every retrain_steps
      retrain_pairs retrain_min_events shard_check trace_out replay_path
      domains =
    match replay_path with
    | Some path ->
      (* Replay mode: re-run a dumped configuration and verify the
         deterministic core byte-for-byte.  Shard dumps carry their own
         header and replay through the sharded engine. *)
      let ic = open_in path in
      let n = in_channel_length ic in
      let json = really_input_string ic n in
      close_in ic;
      if Prete_rt.Shard.is_dump json then begin
        let r, ok =
          with_pool domains (fun pool -> Prete_rt.Shard.replay ~pool json)
        in
        Printf.printf
          "replayed %d epochs on %d shards: availability stream %.5f / \
           periodic %.5f / instant %.5f\n"
          r.Prete_rt.Shard.s_epochs
          r.Prete_rt.Shard.s_partition.Prete_rt.Shard.pt_shards
          r.Prete_rt.Shard.s_avail_stream r.Prete_rt.Shard.s_avail_periodic
          r.Prete_rt.Shard.s_avail_instant;
        if ok then print_endline "MATCH: deterministic core identical to the dump"
        else begin
          print_endline "MISMATCH: deterministic core differs from the dump";
          exit 1
        end
      end
      else begin
        let r, ok =
          with_pool domains (fun pool -> Prete_rt.Runtime.replay ~pool json)
        in
        Printf.printf
          "replayed %d epochs: availability stream %.5f / periodic %.5f / instant %.5f\n"
          r.Prete_rt.Runtime.r_epochs r.Prete_rt.Runtime.r_avail_stream
          r.Prete_rt.Runtime.r_avail_periodic r.Prete_rt.Runtime.r_avail_instant;
        if ok then print_endline "MATCH: deterministic core identical to the dump"
        else begin
          print_endline "MISMATCH: deterministic core differs from the dump";
          exit 1
        end
      end
    | None ->
      let cfg =
        {
          Prete_rt.Runtime.default_config with
          Prete_rt.Runtime.topology = name;
          traffic;
          epochs;
          seed;
          scale;
          detector =
            {
              Prete_rt.Detector.default_config with
              Prete_rt.Detector.ewma_alpha;
              cusum_k;
              cusum_h;
            };
          impairments =
            {
              Prete_rt.Stream.gap_rate;
              dup_rate;
              reorder_rate;
              max_delay;
            };
          debounce_s = debounce;
          deadline_s = deadline;
          predictor = Prete_rt.Runtime.predictor_kind_of_string predictor;
          stale_after;
          detour = not no_detour;
          shards = max 1 shards;
          queue_bound;
          shed_policy = Prete_rt.Runtime.shed_policy_of_string shed_policy;
          lp_engine =
            Prete_lp.Simplex.engine_name !Prete_lp.Simplex.default_engine;
          retrain =
            (if retrain_every <= 0 then None
             else
               Some
                 {
                   Prete_rt.Runtime.rt_every = retrain_every;
                   rt_steps = retrain_steps;
                   rt_pairs = retrain_pairs;
                   rt_min_events = retrain_min_events;
                 });
        }
      in
      if shards > 0 then begin
        (* Fleet-scale sharded engine: every fiber streams, alarms
           coalesce into batched cross-shard re-solves. *)
        let r = with_pool domains (fun pool -> Prete_rt.Shard.run ~pool cfg) in
        print_shard_result r;
        (match trace_out with
        | Some path ->
          let oc = open_out path in
          output_string oc (Prete_rt.Shard.dump r);
          close_out oc;
          Printf.printf "wrote %s (replay with --replay %s)\n" path path
        | None -> ());
        match shard_check with
        | Some m ->
          let cfg' = { cfg with Prete_rt.Runtime.shards = max 1 m } in
          let r' =
            with_pool domains (fun pool -> Prete_rt.Shard.run ~pool cfg')
          in
          if
            String.equal
              (Prete_rt.Shard.deterministic_core r)
              (Prete_rt.Shard.deterministic_core r')
          then
            Printf.printf
              "CHECK OK: core bit-identical at %d and %d shards\n"
              cfg.Prete_rt.Runtime.shards cfg'.Prete_rt.Runtime.shards
          else begin
            Printf.printf
              "CHECK FAILED: core differs between %d and %d shards\n"
              cfg.Prete_rt.Runtime.shards cfg'.Prete_rt.Runtime.shards;
            exit 1
          end
        | None -> ()
      end
      else begin
      let r = with_pool domains (fun pool -> Prete_rt.Runtime.run ~pool cfg) in
      let m = r.Prete_rt.Runtime.r_metrics in
      Printf.printf "%d epochs on %s (seed %d): %d with degradations, %d with cuts\n"
        r.Prete_rt.Runtime.r_epochs name seed r.Prete_rt.Runtime.r_degr_epochs
        r.Prete_rt.Runtime.r_cut_epochs;
      Printf.printf
        "samples %d (dups %d, late %d, gaps filled %d); alarms %d, reactions %d, debounced %d\n"
        (Prete_rt.Metrics.counter m "samples")
        (Prete_rt.Metrics.counter m "dups")
        (Prete_rt.Metrics.counter m "late")
        (Prete_rt.Metrics.counter m "gaps_filled")
        (Prete_rt.Metrics.counter m "alarms")
        (Prete_rt.Metrics.counter m "reactions")
        (Prete_rt.Metrics.counter m "debounced");
      Printf.printf
        "detection latency: mean %.1f s over %d detections; reaction-to-plan mean %.2f s\n"
        (Prete_rt.Metrics.hist_mean m "detection_latency_s")
        (Prete_rt.Metrics.hist_count m "detection_latency_s")
        (Prete_rt.Metrics.hist_mean m "reaction_latency_s");
      Printf.printf "state-fiber cuts: %d reacted in time, %d missed\n"
        r.Prete_rt.Runtime.r_reacted_in_time r.Prete_rt.Runtime.r_missed;
      Printf.printf
        "availability: stream %.5f / periodic-only %.5f / instant %.5f\n"
        r.Prete_rt.Runtime.r_avail_stream r.Prete_rt.Runtime.r_avail_periodic
        r.Prete_rt.Runtime.r_avail_instant;
      (let retrains = Prete_rt.Metrics.counter m "retrains" in
       if retrains > 0 then
         Printf.printf
           "online retrain: %d versions swapped in, swap latency mean %.6f s / \
            max %.6f s\n"
           retrains
           (Prete_rt.Metrics.wall_hist_mean m "swap_s")
           (Prete_rt.Metrics.wall_hist_max m "swap_s"));
      (match r.Prete_rt.Runtime.r_avail_detour with
      | Some v ->
        Printf.printf
          "detour tier: %d activations, %d flows patched, handoff mean %.1f s; \
           stream+detour %.5f\n"
          (Prete_rt.Metrics.counter m "detour_activations")
          (Prete_rt.Metrics.counter m "detour_flows_patched")
          (Prete_rt.Metrics.hist_mean m "detour_handoff_s")
          v
      | None -> print_endline "detour tier: disarmed (--no-detour)");
      (match trace_out with
      | Some path ->
        let oc = open_out path in
        output_string oc (Prete_rt.Runtime.dump r);
        close_out oc;
        Printf.printf "wrote %s (replay with --replay %s)\n" path path
      | None -> ())
      end
  in
  let epochs =
    Arg.(value & opt int 40 & info [ "epochs" ] ~docv:"N" ~doc:"TE periods to stream.")
  in
  let traffic =
    Arg.(
      value & opt string "fixed"
      & info [ "traffic" ] ~docv:"MODEL"
          ~doc:
            "Demand model: fixed (the static gravity matrix) or a \
             Traffic_model spec — gravity | diurnal | flash | coremelt, \
             optionally suffixed :SEED (e.g. flash:7).")
  in
  let seed =
    Arg.(value & opt int 123 & info [ "seed" ] ~docv:"SEED" ~doc:"Sample-path seed.")
  in
  let ewma_alpha =
    Arg.(
      value
      & opt float Prete_rt.Detector.default_config.Prete_rt.Detector.ewma_alpha
      & info [ "ewma-alpha" ] ~docv:"A" ~doc:"EWMA baseline smoothing factor.")
  in
  let cusum_k =
    Arg.(
      value
      & opt float Prete_rt.Detector.default_config.Prete_rt.Detector.cusum_k
      & info [ "cusum-k" ] ~docv:"K" ~doc:"CUSUM slack per sample (dB).")
  in
  let cusum_h =
    Arg.(
      value
      & opt float Prete_rt.Detector.default_config.Prete_rt.Detector.cusum_h
      & info [ "cusum-h" ] ~docv:"H" ~doc:"CUSUM alarm threshold (dB).")
  in
  let debounce =
    Arg.(
      value & opt int 30
      & info [ "debounce" ] ~docv:"S" ~doc:"Min seconds between reactions to one fiber.")
  in
  let gap_rate =
    Arg.(
      value
      & opt float Prete_rt.Stream.default_impairments.Prete_rt.Stream.gap_rate
      & info [ "gap-rate" ] ~docv:"P" ~doc:"P(sample never arrives).")
  in
  let dup_rate =
    Arg.(
      value
      & opt float Prete_rt.Stream.default_impairments.Prete_rt.Stream.dup_rate
      & info [ "dup-rate" ] ~docv:"P" ~doc:"P(sample delivered twice).")
  in
  let reorder_rate =
    Arg.(
      value
      & opt float Prete_rt.Stream.default_impairments.Prete_rt.Stream.reorder_rate
      & info [ "reorder-rate" ] ~docv:"P" ~doc:"P(sample delayed past its tick).")
  in
  let max_delay =
    Arg.(
      value
      & opt int Prete_rt.Stream.default_impairments.Prete_rt.Stream.max_delay
      & info [ "max-delay" ] ~docv:"TICKS" ~doc:"Max delivery delay (ingest horizon).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"S" ~doc:"Anytime budget per reactive solve, seconds.")
  in
  let predictor =
    Arg.(
      value & opt string "hazard"
      & info [ "predictor" ] ~docv:"KIND"
          ~doc:"hazard (ground-truth oracle) | prior (mean hazard) | nn:N (MLP, N training epochs).")
  in
  let stale_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stale-after" ] ~docv:"EPOCH"
          ~doc:"Mark the model stale at this epoch and hot-swap a fresh one at twice it.")
  in
  let no_detour =
    Arg.(
      value & flag
      & info [ "no-detour" ]
          ~doc:
            "Disarm the localized fast-recovery tier (precomputed per-fiber \
             detours installed at Detector-alarm time).")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the fleet-scale sharded engine with N regional shards \
             (every fiber streams; alarms coalesce into batched re-solves). \
             0 (the default) keeps the single-loop sample-path engine.")
  in
  let queue_bound =
    Arg.(
      value
      & opt int Prete_rt.Runtime.default_config.Prete_rt.Runtime.queue_bound
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Coalescer backpressure: max reactions staged behind a busy \
             controller before the shed policy fires (sharded engine only).")
  in
  let shed_policy =
    Arg.(
      value & opt string "drop-newest"
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:"drop-newest | drop-oldest — what to shed at the bound.")
  in
  let retrain_every =
    Arg.(
      value & opt int 0
      & info [ "retrain-every" ] ~docv:"N"
          ~doc:
            "Arm online decision-focused retraining: every N epochs, tune \
             the serving model's outputs against realized TE loss on the \
             measured alarm events and hot-swap the new version in. \
             0 (the default) is off.")
  in
  let retrain_steps =
    Arg.(
      value
      & opt int Prete_rt.Runtime.default_retrain.Prete_rt.Runtime.rt_steps
      & info [ "retrain-steps" ] ~docv:"N" ~doc:"SPSA descent steps per retrain.")
  in
  let retrain_pairs =
    Arg.(
      value
      & opt int Prete_rt.Runtime.default_retrain.Prete_rt.Runtime.rt_pairs
      & info [ "retrain-pairs" ] ~docv:"N"
          ~doc:"Perturbation pairs per gradient estimate.")
  in
  let retrain_min_events =
    Arg.(
      value
      & opt int Prete_rt.Runtime.default_retrain.Prete_rt.Runtime.rt_min_events
      & info [ "retrain-min-events" ] ~docv:"N"
          ~doc:"Measured events required before a due retrain fires.")
  in
  let shard_check =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-check" ] ~docv:"M"
          ~doc:
            "Re-run with M shards and verify the deterministic core is \
             byte-identical; exits 1 on mismatch (needs --shards).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH" ~doc:"Dump the replayable run JSON here.")
  in
  let replay_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:"Replay a dumped run and verify its deterministic core; exits 1 on mismatch.")
  in
  let doc =
    "Stream 1 Hz telemetry through online detection, prediction and reaction \
     (the prete_rt runtime)."
  in
  Cmd.v (Cmd.info "stream" ~doc)
    Term.(
      const run $ lp_term $ topo_arg $ traffic $ epochs $ seed $ scale_arg
      $ ewma_alpha $ cusum_k $ cusum_h $ debounce $ gap_rate $ dup_rate
      $ reorder_rate $ max_delay $ deadline $ predictor $ stale_after
      $ no_detour $ shards $ queue_bound $ shed_policy $ retrain_every
      $ retrain_steps $ retrain_pairs $ retrain_min_events $ shard_check
      $ trace_out $ replay_path $ domains_arg)

let dfl_cmd =
  let run () name nn_epochs steps pairs scale seed check stream_epochs
      expect_swap out domains =
    let topo = Topology.by_name name in
    let env = Availability.make_env topo in
    let ds =
      Prete_optics.Dataset.generate ~model:env.Availability.model topo
    in
    let corpus = Prete_ml.Corpus.of_dataset ds in
    let mlp =
      Prete_ml.Mlp.train
        ~config:{ Prete_ml.Mlp.default_config with Prete_ml.Mlp.epochs = nn_epochs }
        corpus.Prete_ml.Corpus.train
    in
    let tcfg =
      { Prete_ml.Dfl.Trainer.default_config with Prete_ml.Dfl.Trainer.steps; pairs; seed }
    in
    let tune pool =
      let oracle = Prete_ml.Dfl.Oracle.create ~pool ~scale env in
      Prete_ml.Dfl.Trainer.finetune_mlp ~config:tcfg ~oracle mlp
    in
    let df, report = with_pool domains tune in
    let test = corpus.Prete_ml.Corpus.test in
    let auc_of m =
      Prete_ml.Metrics.auc_examples
        ~scores:
          (Array.map
             (fun (e : Prete_ml.Corpus.example) ->
               Prete_ml.Mlp.predict_proba m e.Prete_ml.Corpus.features)
             test)
        test
    in
    let ll_auc = auc_of mlp and df_auc = auc_of df in
    let ll_avail = 1.0 -. report.Prete_ml.Dfl.Trainer.initial_loss in
    let df_avail =
      if report.Prete_ml.Dfl.Trainer.kept then
        1.0 -. report.Prete_ml.Dfl.Trainer.distilled_loss
      else ll_avail
    in
    Printf.printf
      "decision-focused fine-tune on %s (seed %d, scale %g): %d steps x %d \
       pairs, %d loss evals, tuned loss %.6f\n"
      name seed scale steps pairs report.Prete_ml.Dfl.Trainer.loss_calls
      report.Prete_ml.Dfl.Trainer.tuned_loss;
    Printf.printf "%-10s %9s %13s\n" "model" "AUC" "availability";
    Printf.printf "%-10s %9.5f %13.5f\n" "log-loss" ll_auc ll_avail;
    Printf.printf "%-10s %9.5f %13.5f  (%s)\n" "decision" df_auc df_avail
      (if report.Prete_ml.Dfl.Trainer.kept then "kept" else "reverted");
    if df_avail < ll_avail then begin
      print_endline "GATE FAILED: decision-focused availability regressed";
      exit 1
    end;
    (* The AUC can legitimately drop while availability improves — that
       gap is the whole point of training against the optimizer. *)
    let stream_json = ref "null" in
    (match stream_epochs with
    | None -> ()
    | Some n ->
      let cfg =
        {
          Prete_rt.Runtime.default_config with
          Prete_rt.Runtime.topology = name;
          epochs = n;
          seed;
          scale;
          predictor = Prete_rt.Runtime.Nn nn_epochs;
          retrain =
            Some
              {
                Prete_rt.Runtime.rt_every = max 1 (n / 4);
                rt_steps = steps;
                rt_pairs = pairs;
                rt_min_events = 1;
              };
        }
      in
      let r = with_pool domains (fun pool -> Prete_rt.Runtime.run ~pool cfg) in
      let m = r.Prete_rt.Runtime.r_metrics in
      let retrains = Prete_rt.Metrics.counter m "retrains" in
      let swaps = Prete_rt.Metrics.counter m "predictor_swaps" in
      let fallbacks = Prete_rt.Metrics.counter m "predictor_fallbacks" in
      Printf.printf
        "stream leg: %d epochs, %d retrains, %d swaps, %d fallbacks, swap \
         latency max %.6f s, stream availability %.5f\n"
        n retrains swaps fallbacks
        (Prete_rt.Metrics.wall_hist_max m "swap_s")
        r.Prete_rt.Runtime.r_avail_stream;
      stream_json :=
        Printf.sprintf
          "{\"epochs\": %d, \"retrains\": %d, \"swaps\": %d, \"fallbacks\": \
           %d, \"avail_stream\": %.17g}"
          n retrains swaps fallbacks r.Prete_rt.Runtime.r_avail_stream;
      if expect_swap && (retrains < 1 || swaps < 1) then begin
        print_endline
          "GATE FAILED: no model version was swapped during the stream leg";
        exit 1
      end;
      if expect_swap && fallbacks > 0 then begin
        print_endline "GATE FAILED: predictions fell back during hot swaps";
        exit 1
      end);
    (match check with
    | None -> ()
    | Some md ->
      let df2, report2 = Prete_exec.Pool.with_pool ~domains:md tune in
      let outputs m =
        Array.map
          (fun (e : Prete_ml.Corpus.example) ->
            Prete_ml.Mlp.predict_proba m e.Prete_ml.Corpus.features)
          test
      in
      if
        report2.Prete_ml.Dfl.Trainer.initial_loss
          = report.Prete_ml.Dfl.Trainer.initial_loss
        && report2.Prete_ml.Dfl.Trainer.tuned_loss
             = report.Prete_ml.Dfl.Trainer.tuned_loss
        && report2.Prete_ml.Dfl.Trainer.distilled_loss
             = report.Prete_ml.Dfl.Trainer.distilled_loss
        && outputs df2 = outputs df
      then Printf.printf "CHECK OK: training bit-identical at %d domains\n" md
      else begin
        Printf.printf "CHECK FAILED: training differs at %d domains\n" md;
        exit 1
      end);
    match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\"topology\": \"%s\", \"seed\": %d, \"scale\": %.17g,\n\
         \"trainer\": {\"steps\": %d, \"pairs\": %d, \"loss_calls\": %d, \
         \"kept\": %b},\n\
         \"models\": {\"logloss\": {\"auc\": %.17g, \"availability\": %.17g}, \
         \"decision\": {\"auc\": %.17g, \"availability\": %.17g}},\n\
         \"stream\": %s}\n"
        name seed scale steps pairs report.Prete_ml.Dfl.Trainer.loss_calls
        report.Prete_ml.Dfl.Trainer.kept ll_auc ll_avail df_auc df_avail
        !stream_json;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  let nn_epochs =
    Arg.(
      value & opt int 15
      & info [ "nn-epochs" ] ~docv:"N"
          ~doc:"Training epochs for the log-loss warm-start MLP.")
  in
  let steps =
    Arg.(
      value
      & opt int Prete_ml.Dfl.Trainer.default_config.Prete_ml.Dfl.Trainer.steps
      & info [ "steps" ] ~docv:"N" ~doc:"SPSA descent steps.")
  in
  let pairs =
    Arg.(
      value
      & opt int Prete_ml.Dfl.Trainer.default_config.Prete_ml.Dfl.Trainer.pairs
      & info [ "pairs" ] ~docv:"N" ~doc:"Perturbation pairs per gradient estimate.")
  in
  let seed =
    Arg.(
      value
      & opt int Prete_ml.Dfl.Trainer.default_config.Prete_ml.Dfl.Trainer.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Trainer seed (also the stream leg's sample-path seed).")
  in
  let check =
    Arg.(
      value
      & opt (some int) None
      & info [ "check" ] ~docv:"M"
          ~doc:
            "Re-run the fine-tune with M worker domains and verify losses \
             and model outputs are bit-identical; exits 1 on mismatch.")
  in
  let stream_epochs =
    Arg.(
      value
      & opt (some int) None
      & info [ "stream" ] ~docv:"N"
          ~doc:
            "Also stream N TE periods through the runtime with online \
             retraining armed (retrain every N/4 epochs) and report \
             retrains, hot swaps and fallbacks.")
  in
  let expect_swap =
    Arg.(
      value & flag
      & info [ "expect-swap" ]
          ~doc:
            "Exit 1 unless the stream leg hot-swapped at least one retrained \
             model version with zero fallback predictions (smoke-test gate).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH" ~doc:"Write the JSON report here.")
  in
  let doc =
    "Decision-focused fine-tuning: train the MLP on log-loss, tune it \
     end-to-end against realized TE availability (SPSA over the predictor's \
     outputs through warm-started solves), and report AUC next to delivered \
     availability for both models."
  in
  Cmd.v (Cmd.info "dfl" ~doc)
    Term.(
      const run $ lp_term $ topo_arg $ nn_epochs $ steps $ pairs $ scale_arg
      $ seed $ check $ stream_epochs $ expect_swap $ out $ domains_arg)

let sweep_cmd =
  let run () topos traffic profiles epochs seed scale out check domains =
    let split s =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    let topologies = split topos in
    let traffic = split traffic in
    let profiles = split profiles in
    let go pool =
      Prete_rt.Sweep.run ~pool ~seed ~epochs ~scale ~topologies ~traffic
        ~profiles ()
    in
    let p = with_pool domains go in
    let json = Prete_rt.Sweep.to_json p in
    let oc = open_out out in
    output_string oc json;
    close_out oc;
    Printf.printf
      "sweep: %d topologies x %d traffic models x %d profiles x %d policies = \
       %d cells (seed %d, %d epochs, scale %g)\n"
      (List.length topologies) (List.length traffic) (List.length profiles)
      (List.length Prete_rt.Sweep.policies)
      (List.length p.Prete_rt.Sweep.pt_cells)
      seed epochs scale;
    Printf.printf "%-10s %-11s %-6s %8s %9s %9s %9s %9s\n" "topology" "traffic"
      "prof" "phi" "periodic" "stream" "st+det" "instant";
    let by_policy combo_cells policy =
      match
        List.find_opt
          (fun c -> c.Prete_rt.Sweep.cl_policy = policy)
          combo_cells
      with
      | Some c -> c.Prete_rt.Sweep.cl_availability
      | None -> nan
    in
    List.iter
      (fun (cb : Prete_rt.Sweep.combo) ->
        let mine =
          List.filter
            (fun (c : Prete_rt.Sweep.cell) ->
              c.Prete_rt.Sweep.cl_topology = cb.Prete_rt.Sweep.cb_topology
              && c.Prete_rt.Sweep.cl_traffic = cb.Prete_rt.Sweep.cb_traffic
              && c.Prete_rt.Sweep.cl_profile = cb.Prete_rt.Sweep.cb_profile)
            p.Prete_rt.Sweep.pt_cells
        in
        let phi =
          match mine with c :: _ -> c.Prete_rt.Sweep.cl_phi | [] -> nan
        in
        Printf.printf "%-10s %-11s %-6s %8.5f %9.5f %9.5f %9.5f %9.5f\n"
          cb.Prete_rt.Sweep.cb_topology cb.Prete_rt.Sweep.cb_traffic
          cb.Prete_rt.Sweep.cb_profile phi (by_policy mine "periodic")
          (by_policy mine "stream")
          (by_policy mine "stream+detour")
          (by_policy mine "instant"))
      p.Prete_rt.Sweep.pt_combos;
    Printf.printf "wrote %s\n" out;
    if check then begin
      let p1 = with_pool (Some 1) go in
      if String.equal (Prete_rt.Sweep.to_json p1) json then
        print_endline "CHECK OK: portfolio bit-identical at 1 domain"
      else begin
        print_endline "CHECK FAILED: portfolio differs at 1 domain";
        exit 1
      end
    end
  in
  let topos =
    Arg.(
      value
      & opt string "Abilene,B4,grid4"
      & info [ "t"; "topologies" ] ~docv:"NAMES"
          ~doc:"Comma-separated Topology.by_name names.")
  in
  let traffic =
    Arg.(
      value
      & opt string "gravity,diurnal,flash,coremelt"
      & info [ "traffic" ] ~docv:"MODELS"
          ~doc:"Comma-separated Traffic_model.by_name specs.")
  in
  let profiles =
    Arg.(
      value
      & opt string "clean,lossy"
      & info [ "profiles" ] ~docv:"PROFILES"
          ~doc:"Comma-separated fault profiles (clean, lossy).")
  in
  let epochs =
    Arg.(
      value & opt int 12
      & info [ "epochs" ] ~docv:"N" ~doc:"TE periods per combo run.")
  in
  let seed =
    Arg.(value & opt int 3 & info [ "seed" ] ~docv:"SEED" ~doc:"Ground-truth seed.")
  in
  let out =
    Arg.(
      value
      & opt string "sweep_portfolio.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Portfolio JSON output path.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-run the matrix single-domain and fail (exit 1) unless the \
             portfolio JSON is byte-identical — the determinism contract.")
  in
  let doc =
    "Run the {topology x traffic x fault profile x policy} scenario matrix \
     and emit one portfolio JSON."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ lp_term $ topos $ traffic $ profiles $ epochs $ seed
      $ scale_arg $ out $ check $ domains_arg)

let () =
  let doc = "PreTE: traffic engineering with predictive failures (SIGCOMM 2025 reproduction)" in
  let info = Cmd.info "prete" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            topology_cmd;
            dataset_cmd;
            train_cmd;
            solve_cmd;
            availability_cmd;
            simulate_cmd;
            pipeline_cmd;
            chaos_cmd;
            stream_cmd;
            dfl_cmd;
            sweep_cmd;
          ]))
